// Package sched interleaves simulated processes ("agents") deterministically
// on a shared cycle clock.
//
// Each agent owns a local clock; the scheduler always steps the agent whose
// clock is lowest, so shared-state mutations (cache accesses) happen in
// global time order without goroutines or locks. This is what makes the
// asynchronous sender/receiver dynamics of the paper (gap growth, overtake,
// coarse-grained synchronization) reproducible bit-for-bit.
//
// Agents are either required (the run ends when all of them finish) or
// background (noise generators that run as long as any required agent is
// alive).
package sched

import (
	"errors"
	"fmt"
)

// Agent is a resumable simulated process. Step executes the agent's next
// atomic operation (one channel bit, one noise burst, ...) given its local
// time, and returns the cycles consumed and whether the agent finished.
// A zero cost is treated as one cycle so the simulation always advances.
type Agent interface {
	Name() string
	Step(now uint64) (cost uint64, done bool)
}

type entry struct {
	agent    Agent
	time     uint64
	done     bool
	required bool
}

// Scheduler runs a set of agents to completion. The zero value is ready to
// use.
type Scheduler struct {
	entries []entry
	// MaxSteps bounds the total number of Step calls as a runaway guard;
	// 0 means no bound.
	MaxSteps uint64
	steps    uint64
	stopping bool
}

// ErrMaxSteps is returned when the step budget is exhausted before all
// required agents finish.
var ErrMaxSteps = errors.New("sched: step budget exhausted")

// ErrPaused is returned by Run/Resume when an agent called Stop mid-run.
// The paused step is discarded entirely — no time, no step count, no done
// flag — so the scheduler state is exactly "about to step that agent", and
// Resume continues as if the pause never happened.
var ErrPaused = errors.New("sched: paused by agent")

// Add registers a required agent starting at local time start.
func (s *Scheduler) Add(a Agent, start uint64) {
	s.entries = append(s.entries, entry{agent: a, time: start, required: true})
}

// Reserve pre-sizes the roster for n agents, so a run's Add calls do not
// grow the slice one doubling at a time. Overshooting is harmless.
func (s *Scheduler) Reserve(n int) {
	if cap(s.entries) >= n {
		return
	}
	entries := make([]entry, len(s.entries), n)
	copy(entries, s.entries)
	s.entries = entries
}

// AddBackground registers a background agent that runs only while required
// agents are still active.
func (s *Scheduler) AddBackground(a Agent, start uint64) {
	s.entries = append(s.entries, entry{agent: a, time: start})
}

// Steps reports how many agent steps the last Run executed.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Stop requests a pause. It is called from inside an agent's Step; the
// calling agent must return immediately without side effects (its cost and
// done values are discarded), and Run/Resume returns ErrPaused with the
// scheduler positioned exactly before that step.
func (s *Scheduler) Stop() { s.stopping = true }

// State is a scheduler snapshot: the agents' local clocks and done flags
// (in Add order) plus the step counter. Together with the agents' own state
// it freezes a run mid-flight; Restore on a scheduler with the same agent
// roster resumes it bit-for-bit.
type State struct {
	Times []uint64
	Done  []bool
	Steps uint64
}

// Snapshot copies the scheduler's mutable state into st (slices are reused
// when they have capacity).
func (s *Scheduler) Snapshot(st *State) {
	st.Times = st.Times[:0]
	st.Done = st.Done[:0]
	for _, e := range s.entries {
		st.Times = append(st.Times, e.time)
		st.Done = append(st.Done, e.done)
	}
	st.Steps = s.steps
}

// Restore overwrites the scheduler's clocks, done flags, and step counter
// from a snapshot taken on a scheduler with an identical agent roster.
func (s *Scheduler) Restore(st *State) error {
	if len(st.Times) != len(s.entries) || len(st.Done) != len(s.entries) {
		return fmt.Errorf("sched: snapshot has %d agents, scheduler has %d",
			len(st.Times), len(s.entries))
	}
	for i := range s.entries {
		s.entries[i].time = st.Times[i]
		s.entries[i].done = st.Done[i]
	}
	s.steps = st.Steps
	return nil
}

// Run interleaves all agents until every required agent reports done. It
// returns the largest local time reached by any required agent (the
// wall-clock length of the run in cycles).
func (s *Scheduler) Run() (uint64, error) {
	s.steps = 0
	return s.run()
}

// Resume continues a paused or restored run without resetting the step
// counter.
func (s *Scheduler) Resume() (uint64, error) { return s.run() }

//detlint:hotpath
func (s *Scheduler) run() (uint64, error) {
	if len(s.entries) == 0 {
		return 0, fmt.Errorf("sched: no agents") //detlint:allow hotpathalloc -- error built only on the misuse path that aborts the run
	}
	required := 0
	for _, e := range s.entries {
		if e.required && !e.done {
			required++
		}
	}
	if required == 0 {
		return 0, fmt.Errorf("sched: no required agents") //detlint:allow hotpathalloc -- error built only on the misuse path that aborts the run
	}
	s.stopping = false
	for required > 0 {
		if s.MaxSteps > 0 && s.steps >= s.MaxSteps {
			return s.end(), ErrMaxSteps
		}
		idx := -1
		for i := range s.entries {
			if s.entries[i].done {
				continue
			}
			if idx < 0 || s.entries[i].time < s.entries[idx].time {
				idx = i
			}
		}
		e := &s.entries[idx]
		cost, done := e.agent.Step(e.time)
		if s.stopping {
			// The agent asked for a pause instead of stepping: discard the
			// step (an agent calling Stop returns without side effects), so
			// state is exactly "about to step this agent" for Resume.
			s.stopping = false
			return s.end(), ErrPaused
		}
		if cost == 0 {
			cost = 1
		}
		e.time += cost
		s.steps++
		if done {
			e.done = true
			if e.required {
				required--
			}
		}
	}
	return s.end(), nil
}

// end returns the maximum local time across required agents.
//
//detlint:hotpath
func (s *Scheduler) end() uint64 {
	var max uint64
	for _, e := range s.entries {
		if e.required && e.time > max {
			max = e.time
		}
	}
	return max
}
