// Package sched interleaves simulated processes ("agents") deterministically
// on a shared cycle clock.
//
// Each agent owns a local clock; the scheduler always steps the agent whose
// clock is lowest, so shared-state mutations (cache accesses) happen in
// global time order without goroutines or locks. This is what makes the
// asynchronous sender/receiver dynamics of the paper (gap growth, overtake,
// coarse-grained synchronization) reproducible bit-for-bit.
//
// Agents are either required (the run ends when all of them finish) or
// background (noise generators that run as long as any required agent is
// alive).
package sched

import (
	"errors"
	"fmt"
)

// Agent is a resumable simulated process. Step executes the agent's next
// atomic operation (one channel bit, one noise burst, ...) given its local
// time, and returns the cycles consumed and whether the agent finished.
// A zero cost is treated as one cycle so the simulation always advances.
type Agent interface {
	Name() string
	Step(now uint64) (cost uint64, done bool)
}

type entry struct {
	agent    Agent
	time     uint64
	done     bool
	required bool
}

// Scheduler runs a set of agents to completion. The zero value is ready to
// use.
type Scheduler struct {
	entries []entry
	// MaxSteps bounds the total number of Step calls as a runaway guard;
	// 0 means no bound.
	MaxSteps uint64
	steps    uint64
}

// ErrMaxSteps is returned when the step budget is exhausted before all
// required agents finish.
var ErrMaxSteps = errors.New("sched: step budget exhausted")

// Add registers a required agent starting at local time start.
func (s *Scheduler) Add(a Agent, start uint64) {
	s.entries = append(s.entries, entry{agent: a, time: start, required: true})
}

// AddBackground registers a background agent that runs only while required
// agents are still active.
func (s *Scheduler) AddBackground(a Agent, start uint64) {
	s.entries = append(s.entries, entry{agent: a, time: start})
}

// Steps reports how many agent steps the last Run executed.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Run interleaves all agents until every required agent reports done. It
// returns the largest local time reached by any required agent (the
// wall-clock length of the run in cycles).
func (s *Scheduler) Run() (uint64, error) {
	if len(s.entries) == 0 {
		return 0, fmt.Errorf("sched: no agents")
	}
	required := 0
	for _, e := range s.entries {
		if e.required {
			required++
		}
	}
	if required == 0 {
		return 0, fmt.Errorf("sched: no required agents")
	}
	s.steps = 0
	for required > 0 {
		if s.MaxSteps > 0 && s.steps >= s.MaxSteps {
			return s.end(), ErrMaxSteps
		}
		idx := -1
		for i := range s.entries {
			if s.entries[i].done {
				continue
			}
			if idx < 0 || s.entries[i].time < s.entries[idx].time {
				idx = i
			}
		}
		e := &s.entries[idx]
		cost, done := e.agent.Step(e.time)
		if cost == 0 {
			cost = 1
		}
		e.time += cost
		s.steps++
		if done {
			e.done = true
			if e.required {
				required--
			}
		}
	}
	return s.end(), nil
}

// end returns the maximum local time across required agents.
func (s *Scheduler) end() uint64 {
	var max uint64
	for _, e := range s.entries {
		if e.required && e.time > max {
			max = e.time
		}
	}
	return max
}
