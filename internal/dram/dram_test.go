package dram

import (
	"testing"

	"streamline/internal/mem"
)

func TestNewPanicsOnBadBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two banks")
		}
	}()
	cfg := DefaultConfig()
	cfg.Banks = 3
	New(cfg, 1)
}

func TestMeanLatencyNearPaper(t *testing.T) {
	mean := MeanIdle(DefaultConfig(), 42, 200000)
	if mean < 260 || mean > 310 {
		t.Fatalf("idle mean latency = %.1f, want ~285", mean)
	}
}

func TestFastTailFrequency(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg, 7)
	const n = 1000000
	now := uint64(0)
	fast := 0
	for i := 0; i < n; i++ {
		lat := m.Latency(now, mem.Addr(uint64(i)*64*37))
		if lat < 180 {
			fast++
		}
		now += 300
	}
	rate := float64(fast) / n
	if rate < cfg.FastTailProb*0.5 || rate > cfg.FastTailProb*2.0 {
		t.Fatalf("sub-threshold rate %.5f, want near %.5f", rate, cfg.FastTailProb)
	}
}

func TestNoFastTailWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastTailProb = 0
	m := New(cfg, 7)
	now := uint64(0)
	for i := 0; i < 200000; i++ {
		if lat := m.Latency(now, mem.Addr(uint64(i)*64*37)); lat < 180 {
			t.Fatalf("sub-threshold latency %d with tail disabled", lat)
		}
		now += 300
	}
}

func TestRowBufferHitFasterThanConflict(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	cfg.FastTailProb = 0
	m := New(cfg, 1)
	a := mem.Addr(0)
	sameRow := mem.Addr(64 * 16) // same row (8 KB), same bank (16 banks * 64 B stride)
	otherRow := mem.Addr(uint64(cfg.RowBytes) * uint64(cfg.Banks))
	now := uint64(0)
	m.Latency(now, a) // opens the row
	now += 100        // within the idle-close window
	hit := m.Latency(now, sameRow)
	now += 100
	conflict := m.Latency(now, otherRow) // same bank, different row
	if hit >= conflict {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hit, conflict)
	}
}

func TestRowClosesWhenIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	cfg.FastTailProb = 0
	m := New(cfg, 1)
	m.Latency(0, 0)
	// Long idle: the open row is closed, so a same-row access is a row
	// miss, not a row hit.
	lat := m.Latency(uint64(cfg.RowCloseCycles)*10, mem.Addr(64*16))
	if lat != cfg.RowMiss {
		t.Fatalf("latency after idle = %d, want row-miss %d", lat, cfg.RowMiss)
	}
}

func TestQueueingInflatesLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	cfg.FastTailProb = 0
	idle := MeanIdle(cfg, 3, 50000)

	// Back-to-back accesses at time 0 to the same bank queue up.
	m := New(cfg, 3)
	var sum int
	const n = 32
	for i := 0; i < n; i++ {
		sum += m.Latency(0, mem.Addr(uint64(i)*64*uint64(cfg.Banks))) // all same bank
	}
	loaded := float64(sum) / n
	if loaded <= idle {
		t.Fatalf("loaded mean %.1f not above idle mean %.1f", loaded, idle)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		m := New(DefaultConfig(), 99)
		out := make([]int, 0, 1000)
		now := uint64(0)
		for i := 0; i < 1000; i++ {
			out = append(out, m.Latency(now, mem.Addr(uint64(i*257)*64)))
			now += 250
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at access %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLatencyNeverBelowMin(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg, 5)
	now := uint64(0)
	for i := 0; i < 100000; i++ {
		if lat := m.Latency(now, mem.Addr(uint64(i)*64)); lat < cfg.MinLatency {
			t.Fatalf("latency %d below floor %d", lat, cfg.MinLatency)
		}
		now += 100
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := New(DefaultConfig(), 1)
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		m.Latency(now, mem.Addr(uint64(i)*64))
		now += 300
	}
	if m.Accesses != 1000 {
		t.Fatalf("accesses = %d", m.Accesses)
	}
	if m.RowHits+m.RowMisses+m.Conflicts != 1000 {
		t.Fatalf("row outcome counts do not sum: %d+%d+%d",
			m.RowHits, m.RowMisses, m.Conflicts)
	}
}

func BenchmarkLatency(b *testing.B) {
	m := New(DefaultConfig(), 1)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Latency(now, mem.Addr(uint64(i)*64*7))
		now += 265
	}
}
