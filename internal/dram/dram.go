// Package dram models main-memory access latency for LLC misses.
//
// The model is deliberately simple but captures the three effects the
// Streamline evaluation depends on:
//
//  1. A mean LLC-miss latency around 285 cycles (Section 4.1), composed of
//     the LLC lookup plus row-buffer-dependent DRAM timing and bounded
//     pseudo-random jitter.
//  2. A fast tail: a small fraction of misses complete below the receiver's
//     180-cycle threshold (open row, idle bank, lucky queueing) and decode
//     as spurious LLC hits. These are the paper's 1→0 bit errors
//     (Section 4.3), which it observes to be randomly distributed
//     single-bit events.
//  3. Queueing: each access occupies its bank and the shared channel for a
//     while; concurrent traffic (the stress-ng co-runners of Section 4.7)
//     inflates latency, reproducing the measured bit-rate dip under noise.
package dram

import (
	"streamline/internal/mem"
	"streamline/internal/rng"
)

// Config parameterizes the DRAM model. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Banks       int // number of banks (power of two)
	RowBytes    int // row-buffer span; consecutive addresses in a row hit
	RowHit      int // total load-to-use latency on a row-buffer hit
	RowMiss     int // ... on a closed row (activate + read)
	RowConflict int // ... on a row conflict (precharge + activate + read)
	JitterSD    int // stddev of bounded Gaussian jitter in cycles
	// BankBusy and ChannelBusy are the cycles an access occupies its bank
	// and the shared channel; queued accesses wait for both.
	BankBusy    int
	ChannelBusy int
	// RowCloseCycles is how long a row stays open with no traffic to its
	// bank before the idle-timer closes it.
	RowCloseCycles int
	// FastTailProb is the probability that a miss completes on the fast
	// path; FastTailLat is the (sub-threshold) latency it then gets.
	FastTailProb float64
	FastTailLat  int
	// MinLatency clamps the final sample.
	MinLatency int
}

// DefaultConfig returns timings calibrated so the mean miss latency is
// ~285 cycles on an otherwise idle machine, with a fast tail just under the
// paper's 180-cycle threshold.
func DefaultConfig() Config {
	return Config{
		Banks:       16,
		RowBytes:    8192,
		RowHit:      235,
		RowMiss:     285,
		RowConflict: 335,
		JitterSD:    12,
		BankBusy:    24,
		ChannelBusy: 6,
		// A short idle-close timer models an adaptive/closed-page
		// controller: isolated misses (the channel's ~500-cycle-spaced
		// loads) pay the full activate cost, while dense streaming
		// bursts still enjoy row-buffer hits.
		RowCloseCycles: 400,
		FastTailProb:   0.0020,
		FastTailLat:    165,
		MinLatency:     120,
	}
}

// ScaledConfig returns DefaultConfig rescaled for a platform whose mean
// LLC-miss latency is missMean cycles and whose hit/miss decision boundary
// is threshold cycles (the defaults are calibrated for Skylake's 285/180).
// The fast tail lands just under the threshold, preserving the 1→0 error
// mechanism across platforms.
func ScaledConfig(missMean, threshold int) Config {
	cfg := DefaultConfig()
	scale := float64(missMean) / float64(cfg.RowMiss)
	mul := func(v int) int {
		s := int(float64(v) * scale)
		if s < 1 {
			s = 1
		}
		return s
	}
	cfg.RowHit = mul(cfg.RowHit)
	cfg.RowMiss = missMean
	cfg.RowConflict = mul(cfg.RowConflict)
	cfg.JitterSD = mul(cfg.JitterSD)
	cfg.BankBusy = mul(cfg.BankBusy)
	cfg.ChannelBusy = mul(cfg.ChannelBusy)
	cfg.FastTailLat = threshold - mul(15)
	cfg.MinLatency = mul(cfg.MinLatency)
	if cfg.MinLatency > cfg.FastTailLat {
		cfg.MinLatency = cfg.FastTailLat
	}
	return cfg
}

// Model is a deterministic DRAM latency model. Not safe for concurrent use;
// the simulator is single-threaded by design.
type Model struct {
	cfg Config //detlint:lifecycle-skip timing/geometry configuration fixed at construction
	x   *rng.Xoshiro

	bankMask    uint64  //detlint:lifecycle-skip derived from cfg.Banks at construction, immutable
	rowOpen     []int64 // open row id per bank, -1 if closed
	bankFree    []uint64
	bankLastUse []uint64
	chanFree    uint64

	// Stats
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
	Conflicts uint64
	FastTails uint64
}

// New returns a DRAM model with the given config and seed.
func New(cfg Config, seed uint64) *Model {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("dram: bank count must be a positive power of two")
	}
	m := &Model{
		cfg:         cfg,
		x:           rng.New(seed),
		bankMask:    uint64(cfg.Banks - 1),
		rowOpen:     make([]int64, cfg.Banks),
		bankFree:    make([]uint64, cfg.Banks),
		bankLastUse: make([]uint64, cfg.Banks),
	}
	for i := range m.rowOpen {
		m.rowOpen[i] = -1
	}
	return m
}

// bankOf maps an address to a bank: line-interleaved across banks so
// adjacent cache lines hit different banks, like real channel interleaving.
func (m *Model) bankOf(a mem.Addr) int {
	return int((uint64(a) >> 6) & m.bankMask)
}

func (m *Model) rowOf(a mem.Addr) int64 {
	return int64(uint64(a) / uint64(m.cfg.RowBytes))
}

// Latency returns the total load-to-use latency in cycles for an LLC miss
// to addr issued at time now, and advances the model's queue/row state.
func (m *Model) Latency(now uint64, addr mem.Addr) int {
	m.Accesses++
	bank := m.bankOf(addr)
	row := m.rowOf(addr)

	// Queueing: wait for channel and bank.
	var wait uint64
	if m.chanFree > now {
		wait = m.chanFree - now
	}
	start := now + wait
	if m.bankFree[bank] > start {
		wait += m.bankFree[bank] - start
		start = m.bankFree[bank]
	}

	// Idle-timer row close.
	if m.rowOpen[bank] >= 0 && start > m.bankLastUse[bank]+uint64(m.cfg.RowCloseCycles) {
		m.rowOpen[bank] = -1
	}

	var base int
	switch {
	case m.rowOpen[bank] == row:
		base = m.cfg.RowHit
		m.RowHits++
	case m.rowOpen[bank] < 0:
		base = m.cfg.RowMiss
		m.RowMisses++
	default:
		base = m.cfg.RowConflict
		m.Conflicts++
	}
	m.rowOpen[bank] = row
	m.bankLastUse[bank] = start
	m.bankFree[bank] = start + uint64(m.cfg.BankBusy)
	m.chanFree = now + wait + uint64(m.cfg.ChannelBusy)

	if m.cfg.FastTailProb > 0 && m.x.Float64() < m.cfg.FastTailProb {
		m.FastTails++
		lat := m.cfg.FastTailLat + m.x.Intn(11) - 5
		if lat < m.cfg.MinLatency {
			lat = m.cfg.MinLatency
		}
		return lat
	}

	lat := base + int(wait) + int(m.x.Norm()*float64(m.cfg.JitterSD))
	if lat < m.cfg.MinLatency {
		lat = m.cfg.MinLatency
	}
	return lat
}

// MeanIdle estimates the model's mean latency under no contention by
// sampling; useful for calibration tests and tools.
func MeanIdle(cfg Config, seed uint64, samples int) float64 {
	m := New(cfg, seed)
	var sum int64
	now := uint64(0)
	for i := 0; i < samples; i++ {
		// Spread accesses over addresses and time so queueing and row
		// locality do not dominate.
		a := mem.Addr(uint64(i) * 64 * 37)
		sum += int64(m.Latency(now, a))
		now += 300
	}
	return float64(sum) / float64(samples)
}
