package dram

import (
	"testing"

	"streamline/internal/mem"
	"streamline/internal/rng"
	"streamline/internal/statetest"
)

// driveModel applies a pseudo-random access sequence with advancing time,
// exercising row hits, conflicts, queueing, and the jitter/fast-tail RNG.
func driveModel(m *Model, x *rng.Xoshiro, n int) {
	now := uint64(0)
	for i := 0; i < n; i++ {
		now += x.Uint64() % 300
		m.Latency(now, mem.Addr(x.Uint64()%(64<<20)))
	}
}

// requireSameModel drives both models with an identical suffix and fails on
// the first diverging latency.
func requireSameModel(t *testing.T, got, want *Model, seed uint64, n int) {
	t.Helper()
	statetest.Equal(t, "stats",
		[5]uint64{got.Accesses, got.RowHits, got.RowMisses, got.Conflicts, got.FastTails},
		[5]uint64{want.Accesses, want.RowHits, want.RowMisses, want.Conflicts, want.FastTails})
	x := rng.New(seed)
	now := uint64(0)
	for i := 0; i < n; i++ {
		now += x.Uint64() % 300
		a := mem.Addr(x.Uint64() % (64 << 20))
		if g, w := got.Latency(now, a), want.Latency(now, a); g != w {
			t.Fatalf("latency divergence at suffix op %d: %d != %d", i, g, w)
		}
	}
}

func TestModelResetEqualsNew(t *testing.T) {
	dirty := New(DefaultConfig(), 7)
	driveModel(dirty, rng.New(123), 50000)
	dirty.Reset(99)
	requireSameModel(t, dirty, New(DefaultConfig(), 99), 555, 50000)
}

func TestModelCloneEquivalenceAndIndependence(t *testing.T) {
	src := New(DefaultConfig(), 7)
	driveModel(src, rng.New(123), 50000)
	c1 := src.Clone()
	c2 := src.Clone()
	driveModel(c1, rng.New(321), 50000) // perturb one clone
	requireSameModel(t, src, c2, 555, 50000)
}

func TestModelCopyFrom(t *testing.T) {
	src := New(DefaultConfig(), 7)
	driveModel(src, rng.New(123), 50000)
	dst := New(DefaultConfig(), 42)
	driveModel(dst, rng.New(77), 10000)
	dst.CopyFrom(src)
	requireSameModel(t, dst, src.Clone(), 555, 50000)
}

func TestModelFieldAudit(t *testing.T) {
	statetest.Fields(t, Model{},
		"cfg", "x", "bankMask", "rowOpen", "bankFree", "bankLastUse", "chanFree",
		"Accesses", "RowHits", "RowMisses", "Conflicts", "FastTails")
}
