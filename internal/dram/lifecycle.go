// State lifecycle for the DRAM model (see DESIGN.md "State lifecycle").

package dram

import "fmt"

// Reset reinitializes the model in place to exactly the state New(m.cfg,
// seed) would produce: rows closed, banks and channel idle, statistics
// zeroed, jitter RNG reseeded. It allocates nothing.
func (m *Model) Reset(seed uint64) {
	m.x.Reseed(seed)
	for i := range m.rowOpen {
		m.rowOpen[i] = -1
	}
	for i := range m.bankFree {
		m.bankFree[i] = 0
	}
	for i := range m.bankLastUse {
		m.bankLastUse[i] = 0
	}
	m.chanFree = 0
	m.Accesses = 0
	m.RowHits = 0
	m.RowMisses = 0
	m.Conflicts = 0
	m.FastTails = 0
}

// Clone returns a deep copy of the model that evolves independently of the
// receiver.
func (m *Model) Clone() *Model {
	c := *m
	c.x = m.x.Clone()
	c.rowOpen = append([]int64(nil), m.rowOpen...)
	c.bankFree = append([]uint64(nil), m.bankFree...)
	c.bankLastUse = append([]uint64(nil), m.bankLastUse...)
	return &c
}

// CopyFrom overwrites the model's state with src's, in place and without
// allocating. The two models must share a config (callers pair them by
// fingerprint); a bank-count mismatch panics.
func (m *Model) CopyFrom(src *Model) {
	if m.cfg != src.cfg {
		panic(fmt.Sprintf("dram: CopyFrom between mismatched configs %+v <- %+v", m.cfg, src.cfg))
	}
	m.x.CopyStateFrom(src.x)
	copy(m.rowOpen, src.rowOpen)
	copy(m.bankFree, src.bankFree)
	copy(m.bankLastUse, src.bankLastUse)
	m.chanFree = src.chanFree
	m.Accesses = src.Accesses
	m.RowHits = src.RowHits
	m.RowMisses = src.RowMisses
	m.Conflicts = src.Conflicts
	m.FastTails = src.FastTails
}

// Config exposes the model's configuration (used for fingerprinting and the
// CopyFrom pairing check).
func (m *Model) Config() Config { return m.cfg }
