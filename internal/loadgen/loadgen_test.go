package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"streamline/internal/resultstore"
)

// serveResults mimics the daemon's GET /results/{key} endpoint, keeping
// the HTTP test independent of the daemon package.
func serveResults(st *resultstore.Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /results/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := resultstore.ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, ok := st.Get(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(p)
	})
	return mux
}

func openStore(t *testing.T) *resultstore.Store {
	t.Helper()
	st, err := resultstore.Open(t.TempDir(), resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTraceIsWorkerCountInvariant pins the determinism contract: the key
// picked for request j is a function of (seed, j) alone, so the multiset
// of requested keys — and therefore hits/misses against a fixed store —
// is identical at any worker count and in either loop mode.
func TestTraceIsWorkerCountInvariant(t *testing.T) {
	cfg := Config{Keys: 64, Requests: 512, Seed: 7}.withDefaults()
	cdf := zipfCDF(cfg.Keys, cfg.ZipfS)
	var ref []int
	for j := 0; j < cfg.Requests; j++ {
		ref = append(ref, keyIndexFor(cfg, cdf, j))
	}
	again := make([]int, cfg.Requests)
	for j := range again {
		again[j] = keyIndexFor(cfg, cdf, j)
	}
	for j := range ref {
		if ref[j] != again[j] {
			t.Fatalf("request %d resampled to a different key: %d vs %d", j, again[j], ref[j])
		}
	}
	// Skew sanity: rank 0 must be requested more than a uniform share.
	count0 := 0
	for _, i := range ref {
		if i == 0 {
			count0++
		}
	}
	if uniform := cfg.Requests / cfg.Keys; count0 <= uniform {
		t.Errorf("rank-0 key requested %d times, uniform share is %d — Zipf skew missing", count0, uniform)
	}
}

func TestClosedLoopAgainstStore(t *testing.T) {
	st := openStore(t)
	cfg := Config{Keys: 32, ValueBytes: 256, Requests: 2000, Workers: 4, Seed: 3}
	if err := Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(StoreTarget{st}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != res.Requests || res.HitRatio != 1 {
		t.Errorf("populated store: %d/%d hits (ratio %.3f), want all hits",
			res.Hits, res.Requests, res.HitRatio)
	}
	if res.QPS <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("implausible measurements: %+v", res)
	}
	if st.Stats().MemHits == 0 {
		t.Error("warm closed loop never touched the memory tier")
	}
}

func TestUnpopulatedStoreMisses(t *testing.T) {
	st := openStore(t)
	res, err := Run(StoreTarget{st}, Config{Keys: 8, Requests: 100, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != res.Requests || res.Hits != 0 {
		t.Errorf("cold store: %d hits %d misses, want all misses", res.Hits, res.Misses)
	}
}

func TestOpenLoopAgainstHTTP(t *testing.T) {
	st := openStore(t)
	cfg := Config{Keys: 16, ValueBytes: 128, Requests: 200, Workers: 4, Seed: 9, OpenQPS: 5000}
	if err := Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	// A bare handler mimicking the daemon's results endpoint keeps this
	// test independent of the daemon package (no import cycle risk).
	ts := httptest.NewServer(serveResults(st))
	defer ts.Close()

	res, err := Run(HTTPTarget{Base: ts.URL}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != res.Requests {
		t.Errorf("populated HTTP target: %d/%d hits", res.Hits, res.Requests)
	}
	// 200 requests at 5k/s schedule the last arrival ~40ms in; open loop
	// cannot finish faster than its own schedule.
	if res.Elapsed.Milliseconds() < 35 {
		t.Errorf("open loop finished in %v, faster than the arrival schedule allows", res.Elapsed)
	}
}
