// Package loadgen is a deterministic load generator for the result-store
// serving path. It drives a Target — the store in-process, or a daemon's
// GET /results/{key} over HTTP — with a Zipf-popular key workload and
// reports throughput, latency percentiles, and hit ratios.
//
// The workload is a pure function of the Config: key contents derive from
// the seed, and the key picked for global request j derives from
// (seed, j) alone — never from timing, worker identity, or completion
// order — so two runs with the same Config issue the identical request
// trace at any worker count, in either loop mode. The host clock is read
// only to measure latency and pace open-loop arrivals, both annotated
// display-path uses; it never influences which requests are issued.
//
// Closed loop (OpenQPS == 0): Workers clients issue their share of
// Requests back to back; throughput is offered load, latency is pure
// service time. Open loop (OpenQPS > 0): request j is scheduled at
// j/OpenQPS from the start, workers sleep until each arrival, and latency
// is measured from the scheduled arrival — so queueing delay counts, the
// way a latency SLO sees it.
package loadgen

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"streamline/internal/resultstore"
	"streamline/internal/rng"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Keys is the working-set size: the number of distinct store keys the
	// generator draws from. 0 selects 1024.
	Keys int
	// ValueBytes is the payload size Populate writes per key. 0 selects
	// 4096.
	ValueBytes int
	// Requests is the total number of requests across all workers. 0
	// selects 10000.
	Requests int
	// Workers is the number of concurrent clients. 0 selects 4.
	Workers int
	// ZipfS is the Zipf skew (popularity of rank r ∝ 1/r^s). 0 selects
	// 1.1, a typical hot-key serving skew.
	ZipfS float64
	// Seed roots every derived stream: key contents, per-request key
	// choice. 0 selects 1.
	Seed uint64
	// OpenQPS, when positive, switches to open-loop mode with this target
	// arrival rate in requests per second.
	OpenQPS float64
}

func (c Config) withDefaults() Config {
	if c.Keys <= 0 {
		c.Keys = 1024
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 4096
	}
	if c.Requests <= 0 {
		c.Requests = 10000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one run's measurements.
type Result struct {
	Requests int           `json:"requests"`
	Hits     int           `json:"hits"`
	Misses   int           `json:"misses"`
	Errors   int           `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"p50_ns"`
	P90      time.Duration `json:"p90_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
	HitRatio float64       `json:"hit_ratio"`
}

// Target is one request sink: report whether the key was found.
type Target interface {
	Get(key resultstore.Key) (bool, error)
}

// StoreTarget serves requests from a store handle in-process — the tier
// the daemon itself reads from.
type StoreTarget struct{ Store *resultstore.Store }

func (t StoreTarget) Get(key resultstore.Key) (bool, error) {
	_, ok := t.Store.Get(key)
	return ok, nil
}

// HTTPTarget issues GET {Base}/results/{key} against a daemon.
type HTTPTarget struct {
	Base   string
	Client *http.Client
}

func (t HTTPTarget) Get(key resultstore.Key) (bool, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(t.Base + "/results/" + key.String())
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("GET /results/%s: status %d", key, resp.StatusCode)
	}
}

// keyPayload returns the deterministic payload of working-set key i.
func keyPayload(cfg Config, i int) []byte {
	x := rng.New(rng.Derive(cfg.Seed, rng.HashString("loadgen-key"), uint64(i)))
	b := make([]byte, cfg.ValueBytes)
	for j := range b {
		b[j] = byte(x.Uint64())
	}
	return b
}

// WorkingSet returns the run's key set, derived from the config alone.
func WorkingSet(cfg Config) []resultstore.Key {
	cfg = cfg.withDefaults()
	keys := make([]resultstore.Key, cfg.Keys)
	for i := range keys {
		keys[i] = resultstore.KeyOf(keyPayload(cfg, i))
	}
	return keys
}

// Populate writes the whole working set into the store, so a following
// Run measures the warm serving path.
func Populate(st *resultstore.Store, cfg Config) error {
	cfg = cfg.withDefaults()
	for i := 0; i < cfg.Keys; i++ {
		p := keyPayload(cfg, i)
		if err := st.Put(resultstore.KeyOf(p), p); err != nil {
			return fmt.Errorf("populate key %d: %w", i, err)
		}
	}
	return nil
}

// zipfCDF precomputes the cumulative popularity of ranks 0..n-1 with
// P(rank r) ∝ 1/(r+1)^s, normalized to end at 1.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return cdf
}

// keyIndexFor picks the working-set index of global request j — a pure
// function of (cfg.Seed, j), so the request trace is identical at any
// worker count and in either loop mode.
func keyIndexFor(cfg Config, cdf []float64, j int) int {
	x := rng.New(rng.Derive(cfg.Seed, rng.HashString("loadgen-req"), uint64(j)))
	u := x.Float64()
	return sort.SearchFloat64s(cdf, u)
}

// Run drives the target with cfg's workload and returns the measurements.
func Run(target Target, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	keys := WorkingSet(cfg)
	cdf := zipfCDF(cfg.Keys, cfg.ZipfS)

	latencies := make([]int64, cfg.Requests) // indexed by global request id
	hits := make([]bool, cfg.Requests)
	var firstErr error
	var errCount int
	var errMu sync.Mutex

	start := time.Now() //detlint:allow wallclock -- latency/throughput measurement on the reporting path; the workload trace is clock-free
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Round-robin partition: worker w owns requests w, w+W, ...
			// In both modes the key for request j comes from keyIndexFor,
			// so the partition shapes concurrency, never the trace.
			for j := w; j < cfg.Requests; j += cfg.Workers {
				ref := start
				if cfg.OpenQPS > 0 {
					ref = start.Add(time.Duration(float64(j) / cfg.OpenQPS * float64(time.Second)))
					time.Sleep(time.Until(ref)) //detlint:allow wallclock -- open-loop arrival pacing on the measurement path; arrival times derive from the request index, not the clock
				} else {
					ref = time.Now() //detlint:allow wallclock -- latency measurement on the reporting path
				}
				ok, err := target.Get(keys[keyIndexFor(cfg, cdf, j)])
				latencies[j] = int64(time.Since(ref)) //detlint:allow wallclock -- latency measurement on the reporting path
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errCount++
					errMu.Unlock()
					continue
				}
				hits[j] = ok
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //detlint:allow wallclock -- throughput measurement on the reporting path

	res := Result{Requests: cfg.Requests, Elapsed: elapsed, Errors: errCount}
	if firstErr != nil && errCount == cfg.Requests {
		return res, fmt.Errorf("loadgen: every request failed: %w", firstErr)
	}
	for _, h := range hits {
		if h {
			res.Hits++
		}
	}
	res.Misses = cfg.Requests - res.Hits - errCount
	if cfg.Requests > 0 {
		res.HitRatio = float64(res.Hits) / float64(cfg.Requests)
	}
	if s := elapsed.Seconds(); s > 0 {
		res.QPS = float64(cfg.Requests) / s
	}
	sorted := append([]int64(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) time.Duration {
		return time.Duration(sorted[int(q*float64(len(sorted)-1))])
	}
	res.P50, res.P90, res.P99 = pct(0.50), pct(0.90), pct(0.99)
	res.Max = time.Duration(sorted[len(sorted)-1])
	return res, firstErr
}
