package streamline

import (
	"bytes"
	"testing"

	"streamline/internal/rng"
)

func randomBytes(seed uint64, n int) []byte {
	x := rng.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(x.Uint64())
	}
	return b
}

func TestSendReliableBitExact(t *testing.T) {
	data := randomBytes(7, 128<<10)
	res, err := SendReliable(DefaultConfig(), data, ReliableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact after %d rounds", res.Rounds)
	}
	if !bytes.Equal(res.Received, data) {
		t.Fatal("Exact set but data differs")
	}
	if res.Rounds < 1 || res.Rounds > 8 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.GoodputKBps < 800 {
		t.Fatalf("goodput %.0f KB/s too low", res.GoodputKBps)
	}
	if res.ChannelBits <= len(data)*8 {
		t.Fatal("channel bits do not include protocol overhead")
	}
}

func TestSendReliableRetransmitsUnderNoise(t *testing.T) {
	cfg := DefaultConfig()
	// A small array degrades the channel enough to force retransmissions
	// without killing it.
	cfg.ArraySize = 16 << 20
	data := randomBytes(9, 64<<10)
	res, err := SendReliable(cfg, data, ReliableOptions{MaxRounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact after %d rounds", res.Rounds)
	}
	if res.Retransmitted == 0 {
		t.Fatal("expected retransmissions on a degraded channel")
	}
}

func TestSendReliableGivesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartitionWays = 8 // isolation kills the channel
	data := randomBytes(11, 4<<10)
	res, err := SendReliable(cfg, data, ReliableOptions{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("claimed exact delivery over a dead channel")
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want the cap", res.Rounds)
	}
}

func TestSendReliableRejectsEmpty(t *testing.T) {
	if _, err := SendReliable(DefaultConfig(), nil, ReliableOptions{}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestSendReliableShortPayloadAndOddBlock(t *testing.T) {
	data := randomBytes(13, 1000) // not a multiple of the block size
	res, err := SendReliable(DefaultConfig(), data, ReliableOptions{BlockBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || !bytes.Equal(res.Received, data) {
		t.Fatal("odd-sized payload not delivered exactly")
	}
}

// TestSendReliableMultiRoundDeterminism pins two properties of the
// per-round seed derivation: the whole multi-round transfer is a pure
// function of its inputs, and consecutive rounds get fully mixed seeds (a
// near-collision would make a retry replay the previous round's noise and
// jitter, defeating the retransmission).
func TestSendReliableMultiRoundDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArraySize = 16 << 20 // degraded: forces multiple rounds
	data := randomBytes(9, 64<<10)
	run := func() *ReliableResult {
		res, err := SendReliable(cfg, data, ReliableOptions{MaxRounds: 12})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds < 2 {
		t.Fatalf("need a multi-round transfer to pin, got %d rounds", a.Rounds)
	}
	if a.Rounds != b.Rounds || a.Cycles != b.Cycles ||
		a.ChannelBits != b.ChannelBits || a.Retransmitted != b.Retransmitted ||
		!bytes.Equal(a.Received, b.Received) {
		t.Fatalf("multi-round transfer not deterministic:\n%+v\n%+v", a, b)
	}
	seen := map[uint64]int{}
	for round := 0; round < 12; round++ {
		s := rng.Derive(cfg.Seed, rng.HashString("reliable-round"), uint64(round))
		if prev, dup := seen[s]; dup {
			t.Fatalf("rounds %d and %d derive the same seed %#x", prev, round, s)
		}
		seen[s] = round
	}
}
