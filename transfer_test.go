package streamline

import (
	"bytes"
	"testing"

	"streamline/internal/rng"
)

func randomBytes(seed uint64, n int) []byte {
	x := rng.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(x.Uint64())
	}
	return b
}

func TestSendReliableBitExact(t *testing.T) {
	data := randomBytes(7, 128<<10)
	res, err := SendReliable(DefaultConfig(), data, ReliableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact after %d rounds", res.Rounds)
	}
	if !bytes.Equal(res.Received, data) {
		t.Fatal("Exact set but data differs")
	}
	if res.Rounds < 1 || res.Rounds > 8 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.GoodputKBps < 800 {
		t.Fatalf("goodput %.0f KB/s too low", res.GoodputKBps)
	}
	if res.ChannelBits <= len(data)*8 {
		t.Fatal("channel bits do not include protocol overhead")
	}
}

func TestSendReliableRetransmitsUnderNoise(t *testing.T) {
	cfg := DefaultConfig()
	// A small array degrades the channel enough to force retransmissions
	// without killing it.
	cfg.ArraySize = 16 << 20
	data := randomBytes(9, 64<<10)
	res, err := SendReliable(cfg, data, ReliableOptions{MaxRounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact after %d rounds", res.Rounds)
	}
	if res.Retransmitted == 0 {
		t.Fatal("expected retransmissions on a degraded channel")
	}
}

func TestSendReliableGivesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartitionWays = 8 // isolation kills the channel
	data := randomBytes(11, 4<<10)
	res, err := SendReliable(cfg, data, ReliableOptions{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("claimed exact delivery over a dead channel")
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want the cap", res.Rounds)
	}
}

func TestSendReliableRejectsEmpty(t *testing.T) {
	if _, err := SendReliable(DefaultConfig(), nil, ReliableOptions{}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestSendReliableShortPayloadAndOddBlock(t *testing.T) {
	data := randomBytes(13, 1000) // not a multiple of the block size
	res, err := SendReliable(DefaultConfig(), data, ReliableOptions{BlockBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || !bytes.Equal(res.Received, data) {
		t.Fatal("odd-sized payload not delivered exactly")
	}
}
