package streamline

import (
	"fmt"
	"testing"

	"streamline/internal/core"
	"streamline/internal/experiments"
	"streamline/internal/payload"
	"streamline/internal/runner"
)

// The experiment benchmarks regenerate each of the paper's tables and
// figures once per iteration (at smoke-test scale; run `go run ./cmd/sweep
// -exp <id>` for publication-scale numbers with confidence intervals).
// Runs fan out across the internal/runner worker pool at GOMAXPROCS;
// results are bit-identical at any worker count.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Opts{Seed: uint64(i + 1), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerScaling measures the worker-pool's throughput on a fixed
// batch of channel runs at several pool sizes. On an N-core machine the
// expected speedup from workers=1 to workers=N is close to N (the runs are
// CPU-bound and independent); the decoded results are identical regardless.
func BenchmarkRunnerScaling(b *testing.B) {
	const batch = 8
	specs := make([]runner.Spec, batch)
	for i := range specs {
		specs[i] = runner.Spec{Experiment: "bench-scaling", Rep: i}
	}
	run := func(spec runner.Spec, seed uint64) (float64, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		res, err := core.Run(cfg, payload.Random(seed^0xbead, 40000))
		if err != nil {
			return 0, err
		}
		return res.Errors.Rate(), nil
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runner.Execute(specs, run, runner.Options{Root: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1 regenerates Table 1 (prefetcher-fooling miss-rate matrix).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig6 regenerates Figure 6 (error vs sender-receiver gap).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (gap vs bits transmitted).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig9 regenerates Figure 9 (bit-rate/error vs payload size).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable2 regenerates Table 2 (error breakdown by direction).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (ECC on/off).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table 4 (shared-array-size sensitivity).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5 (synchronization-period sensitivity).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig10 regenerates Figure 10 (noise resilience under stress-ng).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (Flush+Reload window sweep).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTable6 regenerates Table 6 (cross-attack comparison).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationEncoding contrasts naive vs PRNG channel encoding.
func BenchmarkAblationEncoding(b *testing.B) { benchExperiment(b, "ablation-encoding") }

// BenchmarkAblationTrailing isolates the trailing replacement-fooling accesses.
func BenchmarkAblationTrailing(b *testing.B) { benchExperiment(b, "ablation-trailing") }

// BenchmarkAblationRateLimit isolates the sender's rdtscp throttle.
func BenchmarkAblationRateLimit(b *testing.B) { benchExperiment(b, "ablation-ratelimit") }

// BenchmarkAblationReplacement sweeps LLC replacement policies.
func BenchmarkAblationReplacement(b *testing.B) { benchExperiment(b, "ablation-replacement") }

// BenchmarkAblationPrefetcher toggles the hardware prefetchers.
func BenchmarkAblationPrefetcher(b *testing.B) { benchExperiment(b, "ablation-prefetcher") }

// BenchmarkStreamlineChannel measures simulator throughput for the default
// channel and reports the simulated covert-channel metrics alongside.
func BenchmarkStreamlineChannel(b *testing.B) {
	n := b.N
	if n < 100000 {
		n = 100000
	}
	bits := payload.Random(1, n)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	res, err := core.Run(cfg, bits)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.BitRateKBps, "sim-KB/s")
	b.ReportMetric(res.Errors.Rate()*100, "sim-err-%")
	b.ReportMetric(res.BitPeriodCycles(), "sim-cycles/bit")
}

// BenchmarkBaselines measures one epoch of each synchronous baseline.
func BenchmarkBaselines(b *testing.B) {
	for _, name := range []string{"flush+reload", "flush+flush", "prime+probe(llc)", "take-a-way"} {
		b.Run(name, func(b *testing.B) {
			a, err := Baseline(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			bits := payload.Random(1, b.N+1)
			b.ResetTimer()
			res, err := a.Run(bits)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(res.BitRateKBps, "sim-KB/s")
		})
	}
}

// Extension benchmarks (beyond the paper's own artifacts).

// BenchmarkUniversality regenerates the cross-ISA availability table
// (Sections 2.3.2/2.4: flushless means ARM-capable).
func BenchmarkUniversality(b *testing.B) { benchExperiment(b, "universality") }

// BenchmarkSMT regenerates the hyper-threaded same-core variant comparison
// (Section 6).
func BenchmarkSMT(b *testing.B) { benchExperiment(b, "smt") }

// BenchmarkMitigations regenerates the Section 7 defenses study.
func BenchmarkMitigations(b *testing.B) { benchExperiment(b, "mitigations") }

// BenchmarkAsyncPP regenerates the asynchronous Prime+Probe study
// (Section 5.2 future work, realized).
func BenchmarkAsyncPP(b *testing.B) { benchExperiment(b, "asyncpp") }

// BenchmarkAblationHugePages regenerates the huge-pages methodology
// ablation (Section 4.1).
func BenchmarkAblationHugePages(b *testing.B) { benchExperiment(b, "ablation-hugepages") }
