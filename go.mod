module streamline

go 1.22
