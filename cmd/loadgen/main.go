// Command loadgen drives the result-store serving path with a
// deterministic Zipf workload and reports throughput, latency
// percentiles, and hit ratios. Three targets:
//
//	loadgen -store DIR -populate            # hammer the store in-process
//	loadgen -daemon http://host:8080        # hammer a running daemon's GET /results/{key}
//	loadgen -store DIR -populate -selfdaemon # spin an in-process daemon on loopback and hammer it over HTTP
//
// The workload (which keys exist, which key each request asks for) is a
// pure function of the flags — two invocations with the same flags issue
// the identical request trace at any worker count. -open-qps switches
// from closed-loop (back-to-back requests, service-time latency) to
// open-loop (scheduled arrivals, queueing-inclusive latency).
//
// Typical warm-tier measurement:
//
//	loadgen -store /tmp/lg -populate -requests 100000 -workers 8
//	loadgen -store /tmp/lg -populate -requests 20000 -open-qps 10000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"streamline/internal/daemon"
	"streamline/internal/loadgen"
	"streamline/internal/resultstore"
)

func main() {
	var (
		storeDir   = flag.String("store", "", "result-store directory (in-process target, -populate, and -selfdaemon)")
		daemonURL  = flag.String("daemon", "", "base URL of a running streamlined daemon to target over HTTP")
		selfDaemon = flag.Bool("selfdaemon", false, "serve -store through an in-process daemon on loopback and target it over HTTP")
		populate   = flag.Bool("populate", false, "write the working set into -store before the run")
		memBytes   = flag.Int64("mem-bytes", 0, "store memory-tier budget in bytes (0 = 256 MiB default, negative = disabled)")
		keys       = flag.Int("keys", 1024, "working-set size in distinct keys")
		valueBytes = flag.Int("value-bytes", 4096, "payload bytes per key")
		requests   = flag.Int("requests", 10000, "total requests across all workers")
		workers    = flag.Int("workers", 4, "concurrent clients")
		zipf       = flag.Float64("zipf", 1.1, "Zipf skew s (popularity of rank r ∝ 1/r^s)")
		seed       = flag.Uint64("seed", 1, "root seed for the workload derivation")
		openQPS    = flag.Float64("open-qps", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		asJSON     = flag.Bool("json", false, "emit the result as JSON on stdout")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Keys: *keys, ValueBytes: *valueBytes, Requests: *requests,
		Workers: *workers, ZipfS: *zipf, Seed: *seed, OpenQPS: *openQPS,
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if *storeDir == "" && *daemonURL == "" {
		fmt.Fprintln(os.Stderr, "usage: loadgen -store DIR [-populate] [-selfdaemon] | loadgen -daemon URL")
		os.Exit(2)
	}
	if *daemonURL != "" && (*storeDir != "" || *selfDaemon || *populate) {
		fail(fmt.Errorf("-daemon is exclusive with -store/-populate/-selfdaemon (populate the daemon's store directory directly)"))
	}

	var st *resultstore.Store
	if *storeDir != "" {
		var err error
		st, err = resultstore.Open(*storeDir, resultstore.Options{
			MemBytes: *memBytes,
			Log:      func(format string, args ...any) { fmt.Fprintf(os.Stderr, "loadgen: store: "+format+"\n", args...) },
		})
		if err != nil {
			fail(err)
		}
		if *populate {
			if err := loadgen.Populate(st, cfg); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "loadgen: populated %d keys x %d bytes\n", cfg.Keys, cfg.ValueBytes)
		}
	}

	var target loadgen.Target
	switch {
	case *daemonURL != "":
		target = loadgen.HTTPTarget{Base: *daemonURL}
	case *selfDaemon:
		srv := daemon.NewServer(st, 1, 1)
		defer srv.Drain()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		go http.Serve(ln, srv.Handler())
		base := "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process daemon on %s\n", base)
		target = loadgen.HTTPTarget{Base: base}
	default:
		target = loadgen.StoreTarget{Store: st}
	}

	before := resultstore.Stats{}
	if st != nil {
		before = st.Stats()
	}
	res, err := loadgen.Run(target, cfg)
	if err != nil {
		fail(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
	} else {
		mode := "closed-loop"
		if cfg.OpenQPS > 0 {
			mode = fmt.Sprintf("open-loop @ %.0f req/s", cfg.OpenQPS)
		}
		fmt.Printf("loadgen %s: %d requests, %d workers, %d keys (zipf %.2f)\n",
			mode, res.Requests, *workers, *keys, *zipf)
		fmt.Printf("  throughput %.0f req/s over %v\n", res.QPS, res.Elapsed.Round(1000000))
		fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v\n", res.P50, res.P90, res.P99, res.Max)
		fmt.Printf("  hits %d / misses %d / errors %d (hit ratio %.3f)\n",
			res.Hits, res.Misses, res.Errors, res.HitRatio)
	}
	if st != nil {
		after := st.Stats()
		memOps := (after.MemHits - before.MemHits) + (after.MemMisses - before.MemMisses)
		if memOps > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: store: mem hits %d / misses %d (%.3f), resident %d entries %d bytes\n",
				after.MemHits-before.MemHits, after.MemMisses-before.MemMisses,
				float64(after.MemHits-before.MemHits)/float64(memOps),
				after.MemEntries, after.MemBytes)
		}
	}
}
