// Command streamline runs the Streamline covert channel end-to-end on the
// simulated machine and reports bit-rate, error rates, and gap statistics —
// the equivalent of running the original artifact's sender/receiver pair.
//
// Examples:
//
//	streamline -payload 10000000
//	streamline -payload 1000000 -ecc -array 32 -sync 50000
//	streamline -payload 500000 -noise cache -noise stream
//	streamline -machine kabylake -payload 1000000
//	streamline -payload 1000000 -runs 5 -workers 4   # repeated runs, 95% CIs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"streamline/internal/core"
	"streamline/internal/experiments"
	"streamline/internal/noise"
	"streamline/internal/params"
	"streamline/internal/payload"
	"streamline/internal/runner"
	"streamline/internal/stats"
)

type noiseList []string

func (n *noiseList) String() string { return strings.Join(*n, ",") }

func (n *noiseList) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	var (
		payloadBits = flag.Int("payload", 1000000, "payload size in bits")
		arrayMB     = flag.Int("array", 64, "shared array size in MB")
		syncPeriod  = flag.Int("sync", 200000, "synchronization period in bits (0 disables)")
		ecc         = flag.Bool("ecc", false, "enable (72,64) Hamming error correction")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		machine     = flag.String("machine", "skylake", "machine model: skylake, kabylake, coffeelake, arm")
		noModulate  = flag.Bool("no-modulate", false, "disable the PRNG channel encoding (Figure 4 pathology)")
		noTrailing  = flag.Bool("no-trailing", false, "disable replacement-fooling trailing accesses")
		noRateLimit = flag.Bool("no-ratelimit", false, "disable the sender's rate-limiting rdtscp")
		noPrefetch  = flag.Bool("no-prefetch", false, "disable hardware prefetchers")
		verbose     = flag.Bool("v", false, "print the gap trace")
		smt         = flag.Bool("smt", false, "hyper-threaded same-core variant targeting the L2 (Section 6)")
		partition   = flag.Int("partition", 0, "DAWG-style LLC way-partitioning between trust domains (Section 7); ways per domain")
		randomFill  = flag.Float64("randomfill", 0, "random-fill defense probability (Section 7)")
		dump        = flag.String("dump", "", "write a per-bit CSV trace (index,sent,received,level) to this file")
		camouflage  = flag.Int("camouflage", 0, "adaptive detector camouflage: extra warm loads per bit (Section 7)")
		runs        = flag.Int("runs", 1, "repeat the transmission with derived seeds and report 95% CIs")
		workers     = flag.Int("workers", 0, "worker-pool size for -runs > 1 (0 = GOMAXPROCS, 1 = serial)")
	)
	var noiseNames noiseList
	flag.Var(&noiseNames, "noise", "co-running stress-ng kernel (repeatable); see -noise list")
	flag.Parse()

	// Base configuration: the variant and machine pick tuned defaults;
	// -array and -sync override them only when given explicitly.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var cfg core.Config
	switch {
	case *smt:
		cfg = experiments.SMTStreamlineConfig()
		if explicit["machine"] && *machine != "skylake" {
			fmt.Fprintln(os.Stderr, "-smt is tuned for the skylake machine")
			os.Exit(2)
		}
	case *machine == "arm":
		cfg = experiments.ARMStreamlineConfig()
	default:
		cfg = core.DefaultConfig()
		switch *machine {
		case "skylake":
			cfg.Machine = params.SkylakeE3()
		case "kabylake":
			cfg.Machine = params.KabyLakeI7()
		case "coffeelake":
			cfg.Machine = params.CoffeeLakeI5()
		default:
			fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
			os.Exit(2)
		}
	}
	cfg.Seed = *seed
	cfg.PartitionWays = *partition
	cfg.RandomFillProb = *randomFill
	cfg.CamouflageAccesses = *camouflage
	if explicit["array"] {
		cfg.ArraySize = *arrayMB << 20
	}
	if explicit["sync"] {
		cfg.SyncPeriod = *syncPeriod
	}
	cfg.ECC = *ecc
	cfg.Modulate = !*noModulate
	cfg.RateLimitSender = !*noRateLimit
	cfg.DisablePrefetch = *noPrefetch
	if *noTrailing {
		cfg.TrailingLag = 0
	}
	if *verbose {
		cfg.GapSampleEvery = *payloadBits / 20
	}
	if *dump != "" {
		cfg.TraceLevels = true
	}

	if len(noiseNames) == 1 && noiseNames[0] == "list" {
		for _, k := range noise.StressNG(cfg.Machine.LLC.SizeBytes) {
			fmt.Println(k.Name)
		}
		fmt.Println("browser")
		return
	}
	for _, name := range noiseNames {
		k, ok := noise.ByName(cfg.Machine.LLC.SizeBytes, name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown noise kernel %q (try -noise list)\n", name)
			os.Exit(2)
		}
		cfg.Noise = append(cfg.Noise, k)
	}

	if *runs > 1 {
		if *dump != "" || *verbose {
			fmt.Fprintln(os.Stderr, "-dump and -v require a single run (-runs 1)")
			os.Exit(2)
		}
		if err := multiRun(cfg, *seed, *payloadBits, *runs, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	bits := payload.Random(*seed^0xbead, *payloadBits)
	res, err := core.Run(cfg, bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("machine:          %s\n", cfg.Machine.Name)
	fmt.Printf("payload:          %d bits (%d on the channel)\n", res.PayloadBits, res.ChannelBits)
	fmt.Printf("time:             %.3f s simulated (%d cycles)\n",
		float64(res.Cycles)/(float64(cfg.Machine.FreqMHz)*1e6), res.Cycles)
	fmt.Printf("bit-rate:         %.0f KB/s (bit period %.1f cycles)\n",
		res.BitRateKBps, res.BitPeriodCycles())
	fmt.Printf("bit-error-rate:   %.3f%%\n", res.Errors.Rate()*100)
	fmt.Printf("  raw 0->1:       %.3f%% (premature evictions)\n", res.RawErrors.RateZeroToOne()*100)
	fmt.Printf("  raw 1->0:       %.3f%% (spurious hits)\n", res.RawErrors.RateOneToZero()*100)
	if cfg.ECC {
		fmt.Printf("ECC packets:      %d corrected, %d detected uncorrectable\n",
			res.ECCStats.Corrected, res.ECCStats.Detected)
	}
	fmt.Printf("max gap:          %d bits (sync waits: %d, timeouts: %d)\n",
		res.MaxGap, res.SyncWaits, res.SyncTimeouts)
	fmt.Printf("receiver levels:  L1=%d L2=%d LLC=%d DRAM=%d\n",
		res.ReceiverLevels[0], res.ReceiverLevels[1], res.ReceiverLevels[2], res.ReceiverLevels[3])
	if *verbose {
		fmt.Println("gap trace:")
		for _, g := range res.GapSamples {
			fmt.Printf("  %10d bits  gap %d\n", g.Bits, g.Gap)
		}
	}
	if *dump != "" {
		if err := dumpTrace(*dump, bits, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("per-bit trace:    %s\n", *dump)
	}
}

// multiRun repeats the configured transmission runs times with
// hierarchically derived seeds, fanned out across the worker pool, and
// reports mean ± 95% CI for the channel metrics. Results are identical at
// any worker count.
func multiRun(cfg core.Config, seed uint64, payloadBits, runs, workers int) error {
	specs := make([]runner.Spec, runs)
	for r := range specs {
		specs[r] = runner.Spec{Experiment: "streamline-cli", Rep: r,
			Label: fmt.Sprintf("%d bits", payloadBits)}
	}
	outs, err := runner.Execute(specs, func(s runner.Spec, runSeed uint64) (*core.Result, error) {
		c := cfg
		c.Seed = runSeed
		return core.Run(c, payload.Random(runSeed^0xbead, payloadBits))
	}, runner.Options{Root: seed, Workers: workers, Hook: runner.Progress(os.Stderr)})
	if err != nil {
		return err
	}

	var rates, errs, zo, oz, gaps []float64
	for _, res := range outs {
		rates = append(rates, res.BitRateKBps)
		errs = append(errs, res.Errors.Rate()*100)
		zo = append(zo, res.RawErrors.RateZeroToOne()*100)
		oz = append(oz, res.RawErrors.RateOneToZero()*100)
		gaps = append(gaps, float64(res.MaxGap))
	}
	ci := func(name, unit string, vals []float64) {
		s := stats.Summarize(vals)
		fmt.Printf("%-16s %.3f %s (± %.3f, n=%d)\n", name+":", s.Mean, unit, s.Margin, s.N)
	}
	fmt.Printf("machine:          %s\n", cfg.Machine.Name)
	fmt.Printf("payload:          %d bits x %d runs\n", payloadBits, runs)
	ci("bit-rate", "KB/s", rates)
	ci("bit-error-rate", "%", errs)
	ci("raw 0->1", "%", zo)
	ci("raw 1->0", "%", oz)
	ci("max gap", "bits", gaps)
	return nil
}

// dumpTrace writes one CSV row per payload bit. The serving-level column is
// only available when payload bits map 1:1 onto channel bits (no ECC, no
// preamble); otherwise it is left empty.
func dumpTrace(path string, sent []byte, res *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "index,sent,received,level")
	direct := len(res.LevelTrace) == len(sent)
	names := [4]string{"L1", "L2", "LLC", "DRAM"}
	for i := range sent {
		level := ""
		if direct {
			level = names[res.LevelTrace[i]]
		}
		fmt.Fprintf(w, "%d,%d,%d,%s\n", i, sent[i], res.Decoded[i], level)
	}
	return w.Flush()
}
