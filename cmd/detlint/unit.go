package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"streamline/internal/analysis"
)

// vetConfig is the unit-checking configuration the go vet driver writes
// for each package (the same JSON x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet compilation unit and returns the process exit
// code. The driver requires the facts file (VetxOutput) to exist on any
// successful exit; detlint's analyzers exchange no facts, so it is
// written empty.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	writeVetx := func() int {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "detlint:", err)
				return 2
			}
		}
		return 0
	}

	// Test variants ("pkg [pkg.test]", "pkg_test") re-present the same
	// source; the determinism invariants are enforced on the plain
	// package only, matching the standalone mode's non-test scope.
	if cfg.VetxOnly || strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return writeVetx()
	}

	imp := analysis.NewExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	typesPkg, info, err := analysis.Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "detlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      typesPkg,
		TypesInfo:  info,
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
