// Command detlint runs the repository's determinism linters
// (internal/analysis/...): seedderive, wallclock, mapiter, floatorder,
// lifecycle, hotpathalloc, and sharedstate. Together they enforce, at vet
// time, the invariants the golden conformance suite and the runtime
// audits (statetest reflection, AllocsPerRun, -race) check after the fact
// — that every experiment result is a pure function of its seed,
// bit-identical at any worker count, produced by an allocation-free hot
// path over fully-covered lifecycle state.
//
// Standalone (loads and type-checks packages itself, offline):
//
//	detlint ./...
//	detlint -list
//	detlint -json ./...           # one JSON diagnostic per line
//	detlint -unused-allows ./...  # also fail on stale suppressions
//
// As a go vet tool (speaks vet's unit-checking protocol):
//
//	go vet -vettool=$(which detlint) ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Suppress a
// deliberate finding at its line with
//
//	//detlint:allow <analyzer> -- <reason>
//
// — the reason is mandatory; a reasonless allow is itself a finding, and
// -unused-allows reports every allow that no longer suppresses anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"streamline/internal/analysis"
	"streamline/internal/analysis/floatorder"
	"streamline/internal/analysis/hotpathalloc"
	"streamline/internal/analysis/lifecycle"
	"streamline/internal/analysis/mapiter"
	"streamline/internal/analysis/seedderive"
	"streamline/internal/analysis/sharedstate"
	"streamline/internal/analysis/wallclock"
)

// analyzers is the detlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	seedderive.Analyzer,
	wallclock.Analyzer,
	mapiter.Analyzer,
	floatorder.Analyzer,
	lifecycle.Analyzer,
	hotpathalloc.Analyzer,
	sharedstate.Analyzer,
}

// jsonDiagnostic is the -json wire form: one object per line, stable
// field set, for problem matchers and scripted consumers.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	// The go vet driver probes its -vettool with -V=full (for the build
	// cache key) and -flags (for supported flags) before handing it unit
	// config files; handle the protocol before normal flag parsing.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			// The driver checks `<basename> version <version>` and takes
			// the line as the tool's build-cache key.
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), runtime.Version())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runUnit(os.Args[1], analyzers))
		}
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line instead of file:line:col text")
	unusedAllows := flag.Bool("unused-allows", false, "also report //detlint:allow comments that suppress no diagnostic (stale-suppression audit)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [-json] [-unused-allows] [packages]\n       go vet -vettool=$(which detlint) [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	emit := func(d analysis.Diagnostic) {
		if *jsonOut {
			b, err := json.Marshal(jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "detlint:", err)
				os.Exit(2)
			}
			fmt.Println(string(b))
			return
		}
		fmt.Println(d)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, unused, err := analysis.RunAll(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			emit(d)
			findings++
		}
		if !*unusedAllows {
			continue
		}
		for _, u := range unused {
			msg := fmt.Sprintf("unused //detlint:allow %s (%s): no %s diagnostic here anymore; delete the stale suppression", u.Name, u.Reason, u.Name)
			if !u.Known {
				msg = fmt.Sprintf("//detlint:allow names unknown analyzer %q (registered: see detlint -list); fix the name or delete the comment", u.Name)
			}
			emit(analysis.Diagnostic{
				Analyzer: "detlint",
				Pos:      u.Pos,
				Position: u.Position,
				Message:  msg,
			})
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
