// Command detlint runs the repository's determinism linters
// (internal/analysis/...): seedderive, wallclock, mapiter, and
// floatorder. Together they enforce, at vet time, the invariant the
// golden conformance suite checks after the fact — that every experiment
// result is a pure function of its seed, bit-identical at any worker
// count.
//
// Standalone (loads and type-checks packages itself, offline):
//
//	detlint ./...
//	detlint -list
//
// As a go vet tool (speaks vet's unit-checking protocol):
//
//	go vet -vettool=$(which detlint) ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Suppress a
// deliberate finding at its line with
//
//	//detlint:allow <analyzer> -- <reason>
//
// — the reason is mandatory; a reasonless allow is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"streamline/internal/analysis"
	"streamline/internal/analysis/floatorder"
	"streamline/internal/analysis/mapiter"
	"streamline/internal/analysis/seedderive"
	"streamline/internal/analysis/wallclock"
)

// analyzers is the detlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	seedderive.Analyzer,
	wallclock.Analyzer,
	mapiter.Analyzer,
	floatorder.Analyzer,
}

func main() {
	// The go vet driver probes its -vettool with -V=full (for the build
	// cache key) and -flags (for supported flags) before handing it unit
	// config files; handle the protocol before normal flag parsing.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			// The driver checks `<basename> version <version>` and takes
			// the line as the tool's build-cache key.
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), runtime.Version())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runUnit(os.Args[1], analyzers))
		}
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [packages]\n       go vet -vettool=$(which detlint) [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
