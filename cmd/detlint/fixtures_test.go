package main

import (
	"path/filepath"
	"testing"
)

// TestEveryAnalyzerHasFixtures pins the fixture discipline: each analyzer
// registered in the detlint suite must ship analysistest want-comment
// fixtures for the positive (bad), negative (good), and suppression
// (allow) cases. A new analyzer added to the `analyzers` slice without
// fixtures fails here before it can rot.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range analyzers {
		for _, kind := range []string{"bad", "good", "allow"} {
			dir := filepath.Join("..", "..", "internal", "analysis", a.Name, "testdata", kind)
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil {
				t.Fatal(err)
			}
			if len(files) == 0 {
				t.Errorf("analyzer %s has no %s fixtures: expected at least one .go file in %s", a.Name, kind, dir)
			}
		}
	}
}

// TestAnalyzerNamesAreIdentifiers guards the suppression grammar: allow
// comments split analyzer names on commas and spaces, so a registered
// name containing either would be unaddressable.
func TestAnalyzerNamesAreIdentifiers(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" {
			t.Fatal("analyzer with empty name")
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		for _, r := range a.Name {
			if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
				t.Errorf("analyzer name %q is not a lowercase identifier", a.Name)
			}
		}
	}
}
