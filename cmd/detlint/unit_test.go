package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// exportFiles resolves export data for paths (and their deps) via the
// same offline `go list -export` mechanism the driver itself uses to
// produce PackageFile maps.
func exportFiles(t *testing.T, paths ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = "../.." // module root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	files := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			files[p.ImportPath] = p.Export
		}
	}
	return files
}

// runUnitOn writes a vet-protocol config for one synthetic package and
// runs detlint's unit checker over it, returning the exit code and
// captured stderr.
func runUnitOn(t *testing.T, src string, imports ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "pkg.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := vetConfig{
		ID:          "fixture",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "fixture",
		GoFiles:     []string{goFile},
		PackageFile: exportFiles(t, imports...),
		VetxOutput:  filepath.Join(dir, "out.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}

	// Capture the diagnostics the unit checker prints to stderr.
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	code := runUnit(cfgFile, analyzers)
	w.Close()
	os.Stderr = old
	captured, _ := io.ReadAll(r)

	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("unit checker did not write the facts file: %v", err)
	}
	return code, string(captured)
}

func TestUnitCheckerReportsFindings(t *testing.T) {
	code, out := runUnitOn(t, `package fixture

import "time"

func now() time.Time { return time.Now() }
`, "time")
	if code == 0 {
		t.Fatalf("want nonzero exit for a finding, got 0 (stderr: %s)", out)
	}
	if !bytes.Contains([]byte(out), []byte("wallclock")) {
		t.Fatalf("stderr missing wallclock diagnostic: %s", out)
	}
}

func TestUnitCheckerCleanPackage(t *testing.T) {
	code, out := runUnitOn(t, `package fixture

import "time"

func period(cycles uint64) time.Duration {
	return time.Duration(cycles) * time.Nanosecond
}
`, "time")
	if code != 0 {
		t.Fatalf("want exit 0 for clean package, got %d: %s", code, out)
	}
	if len(out) != 0 {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestUnitCheckerSkipsTestVariants(t *testing.T) {
	dir := t.TempDir()
	cfg := vetConfig{
		ID:         "fixture.test",
		ImportPath: "fixture [fixture.test]",
		VetxOutput: filepath.Join(dir, "out.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := runUnit(cfgFile, analyzers); code != 0 {
		t.Fatalf("test variant must be skipped cleanly, got exit %d", code)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts file missing for skipped variant: %v", err)
	}
}
