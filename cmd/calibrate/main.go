// Command calibrate measures the simulated platform's timing parameters —
// the numbers the original artifact's README tells users to discover and
// put in src/utils.hh before running the attack: LLC hit latency, LLC miss
// latency, the hit/miss threshold, and the flush-latency split that
// Flush+Flush decodes.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamline/internal/hier"
	"streamline/internal/mem"
	"streamline/internal/params"
	"streamline/internal/stats"
)

func main() {
	var (
		machine = flag.String("machine", "skylake", "machine model: skylake, kabylake, coffeelake")
		samples = flag.Int("samples", 50000, "measurements per experiment")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var m *params.Machine
	switch *machine {
	case "skylake":
		m = params.SkylakeE3()
	case "kabylake":
		m = params.KabyLakeI7()
	case "coffeelake":
		m = params.CoffeeLakeI5()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}

	h, err := hier.New(m, hier.Options{Seed: *seed, DisablePrefetch: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	alloc := mem.NewAllocator(m.PageSize)
	buf := alloc.Alloc(64 << 20)

	hitHist := stats.NewHistogram(0, 2, 400)
	missHist := stats.NewHistogram(0, 2, 400)
	now := uint64(0)

	// LLC-hit latency: install from core 0, read from core 1 (cross-core,
	// so the line is in neither private cache of the reader).
	for i := 0; i < *samples; i++ {
		a := buf.AddrAt(i % 1000 * m.PageSize * 3 % buf.Size / 64 * 64)
		h.Access(0, a, now)
		now += 400
		r := h.Access(1, a, now)
		hitHist.Add(r.Latency)
		now += uint64(r.Latency)
		h.Flush(1, a)
		now += 300
	}
	// LLC-miss latency: read never-cached lines.
	next := 0
	for i := 0; i < *samples; i++ {
		a := buf.AddrAt(next)
		next = (next + 3*64) % buf.Size
		h.Flush(1, a)
		r := h.Access(1, a, now)
		missHist.Add(r.Latency)
		now += uint64(r.Latency) + 250
	}

	hitP99 := hitHist.Percentile(0.99)
	missP1 := missHist.Percentile(0.01)
	threshold := (hitP99 + missP1) / 2

	fmt.Printf("machine:            %s (%d MHz, %d cores)\n", m.Name, m.FreqMHz, m.Cores)
	fmt.Printf("LLC:                %d MB, %d-way, %d sets\n",
		m.LLC.SizeBytes>>20, m.LLC.Ways, m.LLC.Sets())
	fmt.Printf("LLC-hit latency:    mean %.0f cycles (p99 %d)\n", hitHist.Mean(), hitP99)
	fmt.Printf("LLC-miss latency:   mean %.0f cycles (p1 %d)\n", missHist.Mean(), missP1)
	fmt.Printf("suggested threshold:%d cycles (configured: %d)\n", threshold, m.Lat.Threshold)
	fmt.Printf("flush latency:      cached %d / uncached %d cycles\n",
		m.Lat.FlushLatency, m.Lat.FlushMiss)
	fmt.Printf("expected bit period:%.0f cycles -> %.0f KB/s\n",
		float64(2*m.Lat.TimerOverhead+m.Lat.LoopOverhead)+
			(hitHist.Mean()+missHist.Mean())/2,
		m.CyclesToKBps(float64(2*m.Lat.TimerOverhead+m.Lat.LoopOverhead)+
			(hitHist.Mean()+missHist.Mean())/2))
	fmt.Printf("sub-threshold misses: %.3f%% of misses (the 1->0 error tail)\n",
		subThresholdPct(missHist, threshold))
}

func subThresholdPct(h *stats.Histogram, threshold int) float64 {
	below, total := 0, 0
	for i, c := range h.Counts {
		v := h.Min + i*h.Width
		if v < threshold {
			below += c
		}
		total += c
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(below) / float64(total)
}
