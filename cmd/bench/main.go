// Command bench is the repository's performance-trajectory harness: it runs
// a fixed-scale subset of the simulator's hot paths under testing.Benchmark
// and emits a machine-readable BENCH_<date>.json (ns/op, allocs/op, and
// simulated-KB-per-wall-second where the workload is a channel run) so that
// successive PRs can be compared number-for-number.
//
// Unlike `go test -bench`, the workload per op is pinned (scaled only by
// -scale), so two JSON files measure the same work and their ns/op ratios
// are meaningful. Compare against a previous report with -baseline:
//
//	bench                                   # writes BENCH_<date>.json
//	bench -scale 0.25 -out BENCH_ci.json    # CI smoke scale
//	bench -baseline BENCH_2026-08-06.json   # fail on >30% ns/op regression
//	bench -baseline old.json -threshold 0.1
//	bench -count 3                          # best of 3 runs per entry
//	bench -compare old.json new.json        # delta table only, no benchmarking
//
// All wall-clock readings happen inside the testing package's benchmark
// runner and the one annotated date stamp below; simulated results never
// see the host clock (see DESIGN.md "Determinism invariants").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"streamline/internal/cache"
	"streamline/internal/core"
	"streamline/internal/experiments"
	"streamline/internal/hier"
	"streamline/internal/loadgen"
	"streamline/internal/mem"
	"streamline/internal/params"
	"streamline/internal/payload"
	"streamline/internal/resultstore"
	"streamline/internal/runner"
)

// Schema is the report format version; bump it when Benchmark fields change
// incompatibly.
const Schema = 1

// Benchmark is one measured entry of a report.
type Benchmark struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`                       // iterations the runner settled on
	NsPerOp     float64 `json:"ns_per_op"`                 // wall nanoseconds per op
	AllocsPerOp float64 `json:"allocs_per_op"`             // heap allocations per op
	SimKBPerS   float64 `json:"sim_kb_per_s,omitempty"`    // simulated KB transmitted per wall second (channel workloads)
	SimErrPct   float64 `json:"sim_err_pct,omitempty"`     // simulated channel error % (sanity check, deterministic)
	BitsPerOp   int     `json:"bits_per_op,omitempty"`     // channel bits simulated per op
	AccessPerOp int     `json:"accesses_per_op,omitempty"` // raw accesses per op (micro benches)
}

// ExpAll records a cold-then-warm `-exp all` pass through a fresh result
// store (-expall): the cold pass simulates everything and writes back, the
// warm pass is served from disk. The hit/miss counts attribute each pass's
// store traffic.
type ExpAll struct {
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	ColdHits    uint64  `json:"cold_hits"`
	ColdMisses  uint64  `json:"cold_misses"`
	WarmHits    uint64  `json:"warm_hits"`
	WarmMisses  uint64  `json:"warm_misses"`
	Workers     int     `json:"workers"` // 0 = GOMAXPROCS
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Schema     int         `json:"schema"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Scale      float64     `json:"scale"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// ExpAll is present when the report was taken with -expall. It is
	// informational (compare ignores it): wall times of full experiment
	// regeneration, cold versus store-served.
	ExpAll *ExpAll `json:"exp_all,omitempty"`
	// Loadgen is present when the report was taken with -loadgen: a
	// closed-loop warm-memory-tier pass of the deterministic load
	// generator against an in-process store (internal/loadgen). Like
	// ExpAll it is informational — compare ignores it — but the qps and
	// p99_ns fields are what the serving-path acceptance numbers in
	// EXPERIMENTS.md quote.
	Loadgen *loadgen.Result `json:"loadgen,omitempty"`
}

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		baseline  = flag.String("baseline", "", "previous report to compare against (empty: no comparison)")
		threshold = flag.Float64("threshold", 0.30, "fail when ns/op regresses by more than this fraction vs -baseline")
		scale     = flag.Float64("scale", 1.0, "workload multiplier (CI smoke uses 0.25)")
		benchtime = flag.String("benchtime", "1s", "per-benchmark measurement budget (testing -benchtime)")
		run       = flag.String("run", "", "only run benchmarks whose name matches this regexp (for iterating; filtered reports should not be used as -baseline)")
		count     = flag.Int("count", 1, "measure each benchmark this many times and keep the fastest (repetition damps scheduler noise)")
		compareTo = flag.Bool("compare", false, "compare two existing reports (old.json new.json) and exit; no benchmarks run")
		expall    = flag.Bool("expall", false, "also time a cold and a warm full `-exp all` pass through a fresh result store (minutes; recorded under exp_all)")
		loadgenF  = flag.Bool("loadgen", false, "also run the deterministic load generator closed-loop against a warm in-process store (recorded under loadgen)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this path (source of cmd/bench/default.pgo)")
		memprof   = flag.String("memprofile", "", "write a heap profile (taken after the benchmarks, post-GC) to this path")
	)
	testing.Init()
	flag.Parse()
	if *compareTo {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two report paths: old.json new.json")
			os.Exit(2)
		}
		old, err := readReport(flag.Arg(0))
		if err == nil {
			var cur Report
			cur, err = readReport(flag.Arg(1))
			if err == nil {
				var ok bool
				ok, err = compare(os.Stdout, flag.Arg(0), old, cur, *threshold)
				if err == nil && !ok {
					os.Exit(1)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "bench: -count must be at least 1")
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "bench: -scale must be positive")
		os.Exit(2)
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime: %v\n", err)
		os.Exit(2)
	}

	var profFile *os.File
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		profFile = f
	}

	rep := Report{
		Schema:    Schema,
		Date:      today(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     *scale,
	}
	var filter *regexp.Regexp
	if *run != "" {
		var err error
		if filter, err = regexp.Compile(*run); err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad -run: %v\n", err)
			os.Exit(2)
		}
	}
	for _, b := range suite(*scale) {
		if filter != nil && !filter.MatchString(b.name) {
			continue
		}
		fmt.Printf("%-24s ", b.name)
		entry := Benchmark{Name: b.name, NsPerOp: math.Inf(1)}
		for rep := 0; rep < *count; rep++ {
			// Isolate entries from each other: without this, later
			// benchmarks inherit the heap (and GC pacing) the earlier ones
			// grew, which showed up as >40% phantom regressions on the last
			// entry.
			runtime.GC()
			res := testing.Benchmark(b.fn)
			// Keep the fastest repetition: the minimum is the run least
			// disturbed by the host, and the workload per op is fixed.
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < entry.NsPerOp {
				entry.Ops = res.N
				entry.NsPerOp = ns
				entry.AllocsPerOp = float64(res.AllocsPerOp())
			}
		}
		if b.bitsPerOp > 0 {
			entry.BitsPerOp = b.bitsPerOp
			entry.SimKBPerS = float64(b.bitsPerOp) / 8192.0 / (entry.NsPerOp * 1e-9)
			entry.SimErrPct = b.simErrPct()
		}
		if b.accessPerOp > 0 {
			entry.AccessPerOp = b.accessPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, entry)
		fmt.Printf("%12.0f ns/op %8.1f allocs/op", entry.NsPerOp, entry.AllocsPerOp)
		if entry.SimKBPerS > 0 {
			fmt.Printf("  %8.0f sim-KB/s  %5.2f sim-err-%%", entry.SimKBPerS, entry.SimErrPct)
		}
		fmt.Println()
	}
	// Flush the profile before report writing or baseline comparison can
	// exit: the profile only covers benchmark execution anyway.
	if profFile != nil {
		pprof.StopCPUProfile()
		profFile.Close()
	}
	if *memprof != "" {
		// Post-GC heap: what the benchmarks retain (pooled simulators, warm
		// snapshots), not the transient garbage they churned.
		runtime.GC()
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}

	if *expall {
		ea, err := measureExpAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -expall: %v\n", err)
			os.Exit(2)
		}
		rep.ExpAll = ea
		fmt.Printf("exp-all cold %.1fs (%d misses)  warm %.1fs (%d hits)\n",
			ea.ColdSeconds, ea.ColdMisses, ea.WarmSeconds, ea.WarmHits)
	}

	if *loadgenF {
		lg, err := measureLoadgen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -loadgen: %v\n", err)
			os.Exit(2)
		}
		rep.Loadgen = lg
		fmt.Printf("loadgen %.0f req/s  p50 %v  p99 %v  hit ratio %.3f\n",
			lg.QPS, lg.P50, lg.P99, lg.HitRatio)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	if err := writeReport(path, rep); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("wrote %s\n", path)

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		ok, err := compare(os.Stdout, *baseline, base, rep, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	}
}

// measureExpAll regenerates every experiment twice through a fresh result
// store — cold (simulating, writing back) then warm (served from disk) —
// and reports the wall times and store traffic of each pass. The passes
// use default scale and GOMAXPROCS workers: the same work `sweep -exp all
// -store DIR` does.
func measureExpAll() (*ExpAll, error) {
	dir, err := os.MkdirTemp("", "bench-expall-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := resultstore.Open(dir, resultstore.Options{MaxBytes: -1})
	if err != nil {
		return nil, err
	}
	defer core.SetStore(core.SetStore(st))

	pass := func() (float64, error) {
		start := time.Now() //detlint:allow wallclock -- report wall-time measurement on the display/reporting path; never reaches simulated results
		for _, id := range experiments.IDs() {
			if _, err := experiments.Run(id, experiments.Opts{Seed: 1}); err != nil {
				return 0, fmt.Errorf("%s: %w", id, err)
			}
		}
		return time.Since(start).Seconds(), nil //detlint:allow wallclock -- report wall-time measurement on the display/reporting path; never reaches simulated results
	}

	ea := &ExpAll{Workers: 0}
	if ea.ColdSeconds, err = pass(); err != nil {
		return nil, err
	}
	cold := st.Stats()
	ea.ColdHits, ea.ColdMisses = cold.Hits, cold.Misses
	if ea.WarmSeconds, err = pass(); err != nil {
		return nil, err
	}
	warm := st.Stats()
	ea.WarmHits, ea.WarmMisses = warm.Hits-cold.Hits, warm.Misses-cold.Misses
	return ea, nil
}

// measureLoadgen runs the deterministic load generator closed-loop
// against a freshly populated in-process store with the default memory
// tier: the canonical warm-serving number. The workload trace is a pure
// function of the fixed config below, so successive reports measure the
// identical request sequence.
func measureLoadgen() (*loadgen.Result, error) {
	dir, err := os.MkdirTemp("", "bench-loadgen-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		return nil, err
	}
	cfg := loadgen.Config{
		Keys: 1024, ValueBytes: 4096, Requests: 500_000,
		Workers: 8, ZipfS: 1.1, Seed: 1,
	}
	if err := loadgen.Populate(st, cfg); err != nil {
		return nil, err
	}
	// One untimed pass makes the popular tail memory-resident so the
	// measured pass is the steady warm-tier state, not the fill.
	if _, err := loadgen.Run(loadgen.StoreTarget{Store: st}, cfg); err != nil {
		return nil, err
	}
	res, err := loadgen.Run(loadgen.StoreTarget{Store: st}, cfg)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// today stamps the report and default filename.
func today() string {
	return time.Now().Format("2006-01-02") //detlint:allow wallclock -- report date stamp on the display/reporting path; never reaches simulated results
}

func writeReport(path string, rep Report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func readReport(path string) (Report, error) {
	var rep Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare prints a delta table of rep vs the baseline report base (loaded
// from path, used only for labelling) and reports whether every shared
// benchmark is within the regression threshold. Workload scales must match
// for ns/op ratios to mean anything.
func compare(w *os.File, path string, base, rep Report, threshold float64) (ok bool, err error) {
	if base.Scale != rep.Scale {
		return false, fmt.Errorf("scale mismatch: baseline %v vs current %v (rerun with -scale %v)",
			base.Scale, rep.Scale, base.Scale)
	}
	prev := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}
	ok = true
	fmt.Fprintf(w, "vs %s (%s):\n", path, base.Date)
	for _, b := range rep.Benchmarks {
		p, found := prev[b.Name]
		if !found || p.NsPerOp <= 0 {
			fmt.Fprintf(w, "  %-24s (new)\n", b.Name)
			continue
		}
		ratio := b.NsPerOp / p.NsPerOp
		verdict := "ok"
		switch {
		case ratio > 1+threshold:
			verdict = "REGRESSION"
			ok = false
		case ratio < 1/(1+threshold):
			verdict = "improved"
		}
		fmt.Fprintf(w, "  %-24s %12.0f -> %12.0f ns/op  %5.2fx  %s\n",
			b.Name, p.NsPerOp, b.NsPerOp, ratio, verdict)
	}
	if !ok {
		fmt.Fprintf(w, "FAIL: ns/op regression beyond %.0f%% threshold\n", threshold*100)
	}
	return ok, nil
}

// bench is one suite entry: a fixed workload wrapped for testing.Benchmark.
type bench struct {
	name        string
	fn          func(b *testing.B)
	bitsPerOp   int
	accessPerOp int
	simErrPct   func() float64
}

// scaled rounds n*scale up to at least 1.
func scaled(n int, scale float64) int {
	v := int(math.Round(float64(n) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// suite builds the fixed-scale benchmark set. Workloads mirror the hot
// paths the channel experiments exercise: the end-to-end channel, the
// cache-level access paths (thrash, MRU hit, set-scan hit, private PLRU),
// the hierarchy fast path, and one full experiment regeneration.
func suite(scale float64) []bench {
	var suite []bench

	// End-to-end channel run: the acceptance metric. One op simulates
	// `bits` channel bits through the default (paper) configuration.
	bits := scaled(400_000, scale)
	var lastErrRate float64
	suite = append(suite, bench{
		name:      "channel/default",
		bitsPerOp: bits,
		simErrPct: func() float64 { return lastErrRate * 100 },
		fn: func(b *testing.B) {
			pay := payload.Random(1, bits)
			cfg := core.DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cfg, pay)
				if err != nil {
					b.Fatal(err)
				}
				lastErrRate = res.Errors.Rate()
			}
		},
	})

	// Result-store round trips on a table2-sized channel point. store/miss
	// runs cold with write-back (a fresh seed per op keeps every key cold),
	// so its delta over channel/default is the keying + encode + write
	// overhead; store/hit serves one pre-computed entry per op from the
	// default memory tier — its sim-KB/s is the warm serve rate the
	// daemon's hot path sees (store/diskhit below is the same serve with
	// the tier off).
	storeBits := scaled(100_000, scale)
	var storeMissErr float64
	suite = append(suite, bench{
		name:      "store/miss",
		bitsPerOp: storeBits,
		simErrPct: func() float64 { return storeMissErr * 100 },
		fn: func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-store-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := resultstore.Open(dir, resultstore.Options{MaxBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer core.SetStore(core.SetStore(st))
			pay := payload.Random(1, storeBits)
			cfg := core.DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err := core.Run(cfg, pay)
				if err != nil {
					b.Fatal(err)
				}
				storeMissErr = res.Errors.Rate()
			}
		},
	})
	var storeHitErr float64
	suite = append(suite, bench{
		name:      "store/hit",
		bitsPerOp: storeBits,
		simErrPct: func() float64 { return storeHitErr * 100 },
		fn: func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-store-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := resultstore.Open(dir, resultstore.Options{MaxBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer core.SetStore(core.SetStore(st))
			pay := payload.Random(1, storeBits)
			cfg := core.DefaultConfig()
			cfg.Seed = 1
			if _, err := core.Run(cfg, pay); err != nil { // populate the entry
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cfg, pay)
				if err != nil {
					b.Fatal(err)
				}
				storeHitErr = res.Errors.Rate()
			}
			b.StopTimer()
			if s := st.Stats(); s.Hits < uint64(b.N) {
				b.Fatalf("store served %d of %d ops; the hit benchmark is simulating", s.Hits, b.N)
			}
		},
	})

	// The same warm serve with the memory tier disabled: every hit reads
	// and decodes the on-disk envelope. store/hit over store/diskhit is
	// the memory tier's win; diskhit over miss is still the store's win.
	var storeDiskErr float64
	suite = append(suite, bench{
		name:      "store/diskhit",
		bitsPerOp: storeBits,
		simErrPct: func() float64 { return storeDiskErr * 100 },
		fn: func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-store-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := resultstore.Open(dir, resultstore.Options{MaxBytes: -1, MemBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer core.SetStore(core.SetStore(st))
			pay := payload.Random(1, storeBits)
			cfg := core.DefaultConfig()
			cfg.Seed = 1
			if _, err := core.Run(cfg, pay); err != nil { // populate the entry
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cfg, pay)
				if err != nil {
					b.Fatal(err)
				}
				storeDiskErr = res.Errors.Rate()
			}
			b.StopTimer()
			if s := st.Stats(); s.Hits < uint64(b.N) {
				b.Fatalf("store served %d of %d ops; the hit benchmark is simulating", s.Hits, b.N)
			}
			if s := st.Stats(); s.MemHits != 0 {
				b.Fatalf("disabled memory tier served %d hits", s.MemHits)
			}
		},
	})

	// Many-repetition sweep of one configuration: the shape of every
	// experiment table (N seeds per parameter point) and the workload the
	// simulator pool and warmup-snapshot memo accelerate — each op re-runs
	// the same machine `reps` times with derived seeds. Serial workers keep
	// the measurement scheduling-independent.
	sweepReps := scaled(24, scale)
	const sweepBits = 20_000
	var sweepErrRate float64
	suite = append(suite, bench{
		name:      "runner/sweep",
		bitsPerOp: sweepReps * sweepBits,
		simErrPct: func() float64 { return sweepErrRate * 100 },
		fn: func(b *testing.B) {
			pay := payload.Random(1, sweepBits)
			specs := make([]runner.Spec, sweepReps)
			for r := range specs {
				specs[r] = runner.Spec{Experiment: "bench-sweep", Rep: r}
			}
			fn := func(spec runner.Spec, seed uint64) (float64, error) {
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				res, err := core.Run(cfg, pay)
				if err != nil {
					return 0, err
				}
				return res.Errors.Rate(), nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rates, err := runner.Execute(specs, fn, runner.Options{Root: 7, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, r := range rates {
					sum += r
				}
				sweepErrRate = sum / float64(len(rates))
			}
		},
	})

	// Chained ladder through the work-stealing segment scheduler: the shape
	// of the payload-size experiments under checkpoints. Each op runs a
	// skewed ladder of payload prefixes twice (two repetitions, two
	// workers): the first member of each chain runs cold, the longer ones
	// fork from its published checkpoints, and the second worker steals the
	// other repetition's chain. The tree is dropped per op so every
	// iteration does identical work. bitsPerOp counts *delivered* bits (the
	// sum of ladder lengths); the checkpoint win shows up as delivered
	// KB/s above channel/default's.
	stealLadder := []int{
		scaled(10_000, scale), scaled(20_000, scale),
		scaled(40_000, scale), scaled(80_000, scale),
	}
	stealReps := 2
	stealBits := 0
	for _, n := range stealLadder {
		stealBits += n
	}
	var stealErrRate float64
	suite = append(suite, bench{
		name:      "runner/steal",
		bitsPerOp: stealBits * stealReps,
		simErrPct: func() float64 { return stealErrRate * 100 },
		fn: func(b *testing.B) {
			maxLen := stealLadder[len(stealLadder)-1]
			pays := make([][]byte, stealReps)
			for r := range pays {
				pays[r] = payload.Random(uint64(100+r), maxLen)
			}
			var specs []runner.Spec
			deps := make([][]int, len(stealLadder)*stealReps)
			for p := range stealLadder {
				for r := 0; r < stealReps; r++ {
					i := len(specs)
					specs = append(specs, runner.Spec{Experiment: "bench-steal", Point: p, Rep: r})
					if p > 0 {
						deps[i] = []int{i - stealReps}
					}
				}
			}
			fn := func(spec runner.Spec, _ uint64) (float64, error) {
				cfg := core.DefaultConfig()
				// Chain members share the repetition's seed and payload
				// stream; the ladder lengths are payload prefixes.
				cfg.Seed = uint64(100 + spec.Rep)
				cfg.Chain = &core.ChainSpec{Key: 0x57ea1, Lengths: stealLadder}
				res, err := core.Run(cfg, pays[spec.Rep][:stealLadder[spec.Point]])
				if err != nil {
					return 0, err
				}
				return res.Errors.Rate(), nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.DropCheckpoints()
				rates, err := runner.ExecuteSegments(specs, deps, fn, runner.Options{Root: 7, Workers: 2})
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, r := range rates {
					sum += r
				}
				stealErrRate = sum / float64(len(rates))
			}
		},
	})

	// LLC access path under thrash: every access misses and evicts once
	// the cache is warm (the sender's steady state).
	thrashN := scaled(2_000_000, scale)
	suite = append(suite, bench{
		name:        "cache/llc-thrash",
		accessPerOp: thrashN,
		fn: func(b *testing.B) {
			c, err := cache.New(8192, 16, cache.NewSkylakeLLC(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			l := mem.Line(0)
			for i := 0; i < b.N; i++ {
				for j := 0; j < thrashN; j++ {
					c.Access(l)
					l++
				}
			}
		},
	})

	// Repeated hit to one line: the last-hit-way fast path.
	hitN := scaled(8_000_000, scale)
	suite = append(suite, bench{
		name:        "cache/llc-hit-mru",
		accessPerOp: hitN,
		fn: func(b *testing.B) {
			c, err := cache.New(8192, 16, cache.NewSkylakeLLC(1))
			if err != nil {
				b.Fatal(err)
			}
			c.Access(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < hitN; j++ {
					c.Access(3)
				}
			}
		},
	})

	// Round-robin hits over 8 same-set lines: defeats the MRU hint, so
	// this times the way scan itself.
	scanN := scaled(4_000_000, scale)
	suite = append(suite, bench{
		name:        "cache/llc-hit-scan",
		accessPerOp: scanN,
		fn: func(b *testing.B) {
			c, err := cache.New(8192, 16, cache.NewSkylakeLLC(1))
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 8; j++ {
				c.Access(mem.Line(j * 8192)) // all map to set 0
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < scanN; j++ {
					c.Access(mem.Line((j & 7) * 8192))
				}
			}
		},
	})

	// Private-cache PLRU mix (64-set L1 shape): hits and misses.
	plruN := scaled(4_000_000, scale)
	suite = append(suite, bench{
		name:        "cache/plru-mixed",
		accessPerOp: plruN,
		fn: func(b *testing.B) {
			c, err := cache.New(64, 8, cache.NewTreePLRU())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < plruN; j++ {
					c.Access(mem.Line(j*7) & 1023)
				}
			}
		},
	})

	// Full-hierarchy demand loads on the default machine: the single-
	// domain no-TLB configuration every paper experiment uses, walking a
	// Streamline-like stride (3 lines) that defeats the prefetchers. The
	// walk is driven through the batch kernel in address chunks — the
	// access and timestamp sequence is identical to the scalar twin below
	// (each load issues at the previous load's issue time plus its full
	// latency), so the two entries bracket the batching win.
	hierN := scaled(500_000, scale)
	const hierChunk = 256
	hierWalk := func(region mem.Region, stride int, off int, buf []mem.Addr) int {
		for j := range buf {
			buf[j] = region.AddrAt(off)
			off += stride
			if off >= region.Size {
				off = 0
			}
		}
		return off
	}
	suite = append(suite, bench{
		name:        "hier/stream",
		accessPerOp: hierN,
		fn: func(b *testing.B) {
			h, err := hier.New(params.SkylakeE3(), hier.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			region := mem.NewAllocator(h.Machine().PageSize).Alloc(64 << 20)
			stride := 3 * h.Geometry().LineBytes
			buf := make([]mem.Addr, hierChunk)
			b.ReportAllocs()
			b.ResetTimer()
			off, now := 0, uint64(0)
			for i := 0; i < b.N; i++ {
				for j := 0; j < hierN; j += hierChunk {
					n := hierChunk
					if hierN-j < n {
						n = hierN - j
					}
					off = hierWalk(region, stride, off, buf[:n])
					res := h.AccessBatch(0, buf[:n], now, hier.BatchClock{})
					now += res.Cost
				}
			}
		},
	})

	// The same walk through the scalar Access path, for the batch-vs-scalar
	// bracket in the trajectory reports.
	suite = append(suite, bench{
		name:        "hier/stream-scalar",
		accessPerOp: hierN,
		fn: func(b *testing.B) {
			h, err := hier.New(params.SkylakeE3(), hier.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			region := mem.NewAllocator(h.Machine().PageSize).Alloc(64 << 20)
			stride := 3 * h.Geometry().LineBytes
			b.ReportAllocs()
			b.ResetTimer()
			off, now := 0, uint64(0)
			for i := 0; i < b.N; i++ {
				for j := 0; j < hierN; j++ {
					r := h.Access(0, region.AddrAt(off), now)
					now += uint64(r.Latency)
					off += stride
					if off >= region.Size {
						off = 0
					}
				}
			}
		},
	})

	// One full experiment regeneration at smoke scale: ties the micro
	// numbers to the `-exp` wall times EXPERIMENTS.md reports.
	suite = append(suite, bench{
		name: "experiments/table1-quick",
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run("table1", experiments.Opts{Seed: 1, Quick: true}); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	return suite
}
