package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// flaky is a handler whose first failures-many responses to each path are
// 503s; after that it delegates to ok.
type flaky struct {
	failures int32
	seen     atomic.Int32
	ok       http.Handler
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.failures {
		http.Error(w, "temporarily overloaded", http.StatusServiceUnavailable)
		return
	}
	f.ok.ServeHTTP(w, r)
}

// stubDaemon answers the three remote-client endpoints for one canned job.
func stubDaemon(state string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-1","state":"queued"}`)
	})
	mux.HandleFunc("GET /jobs/job-1/progress", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "run 1/1 done")
	})
	mux.HandleFunc("GET /jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"id":"job-1","state":%q,"table":{"ID":"table1","Title":"t","Header":["h"],"Rows":[["v"]]}}`, state)
	})
	return mux
}

// TestRemoteRetriesTransientErrors pins the backoff satellite: a daemon
// that sheds the first submits with 503 still serves the sweep, and the
// retry notices land on the progress writer.
func TestRemoteRetriesTransientErrors(t *testing.T) {
	f := &flaky{failures: 2, ok: stubDaemon("done")}
	ts := httptest.NewServer(f)
	defer ts.Close()

	var prog strings.Builder
	tab, err := runRemote(ts.URL, remoteJob{Exp: "table1", Seed: 1}, &prog)
	if err != nil {
		t.Fatalf("runRemote with transient 503s: %v", err)
	}
	if tab == nil || tab.ID != "table1" {
		t.Fatalf("table = %+v", tab)
	}
	if got := prog.String(); !strings.Contains(got, "retry 1/") || !strings.Contains(got, "retry 2/") {
		t.Errorf("progress missing retry notices:\n%s", got)
	}
}

// TestRemoteGivesUpAfterBudget: a daemon that never recovers exhausts the
// bounded attempt budget instead of hanging the sweep.
func TestRemoteGivesUpAfterBudget(t *testing.T) {
	f := &flaky{failures: 1 << 30, ok: stubDaemon("done")}
	ts := httptest.NewServer(f)
	defer ts.Close()

	_, err := runRemote(ts.URL, remoteJob{Exp: "table1", Seed: 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("want a giving-up error, got %v", err)
	}
	if n := f.seen.Load(); n != retryAttempts {
		t.Errorf("made %d attempts, budget is %d", n, retryAttempts)
	}
}

// TestRemoteDoesNotRetryRejections: a 4xx is the daemon refusing the
// request; retrying would never help and must not happen.
func TestRemoteDoesNotRetryRejections(t *testing.T) {
	var posts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		http.Error(w, "unknown experiment", http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	_, err := runRemote(ts.URL, remoteJob{Exp: "nope", Seed: 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want the daemon's rejection, got %v", err)
	}
	if n := posts.Load(); n != 1 {
		t.Errorf("4xx retried: %d submits", n)
	}
}

// TestRemoteBatch drives the batch flow against a stub and checks table
// order follows submission order.
func TestRemoteBatch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs/batch", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-9","state":"queued"}`)
	})
	mux.HandleFunc("GET /jobs/job-9/progress", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /jobs/job-9", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"job-9","state":"done","tables":[{"ID":"a"},{"ID":"b"}]}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tabs, err := runRemoteBatch(ts.URL, remoteBatch{Exps: []string{"a", "b"}, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 || tabs[0].ID != "a" || tabs[1].ID != "b" {
		t.Fatalf("tables out of order: %+v", tabs)
	}
}
