// Command sweep regenerates the paper's tables and figures (the role of
// the original artifact's run_exp.sh). Each experiment is addressed by the
// paper's artifact id. Runs fan out across a worker pool; results are
// bit-identical at any worker count (see internal/runner).
//
// Examples:
//
//	sweep -exp table1
//	sweep -exp fig9 -runs 5
//	sweep -exp all
//	sweep -exp all -workers 8   # fan runs out across 8 workers
//	sweep -exp all -workers 1   # strictly serial (the reference path)
//	sweep -exp all -full        # the paper's own payload sizes (hours)
//	sweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamline/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Uint64("seed", 1, "base seed (per-run seeds derive from it hierarchically)")
		runs    = flag.Int("runs", 0, "repetitions per data point (0 = default 3; paper uses 5)")
		full    = flag.Bool("full", false, "paper-scale payload sizes (up to 1e9 bits; hours)")
		quick   = flag.Bool("quick", false, "smoke-test sizes")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: sweep -exp <id|all> (see -list)")
		os.Exit(2)
	}
	if *exp != "all" && !experiments.Known(*exp) {
		fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q (see -list for ids)\n", *exp)
		os.Exit(2)
	}

	opts := experiments.Opts{Seed: *seed, Runs: *runs, Full: *full, Quick: *quick, Workers: *workers}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	total := time.Now()
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			tab.FormatCSV(os.Stdout)
		} else {
			tab.Format(os.Stdout)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s took %s]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !*quiet && *exp == "all" {
		fmt.Fprintf(os.Stderr, "[all experiments took %s]\n", time.Since(total).Round(time.Millisecond))
	}
}
