// Command sweep regenerates the paper's tables and figures (the role of
// the original artifact's run_exp.sh). Each experiment is addressed by the
// paper's artifact id. Runs fan out across a worker pool; results are
// bit-identical at any worker count (see internal/runner).
//
// Examples:
//
//	sweep -exp table1
//	sweep -exp fig9 -runs 5
//	sweep -exp all
//	sweep -exp all -workers 8   # fan runs out across 8 workers
//	sweep -exp all -workers 1   # strictly serial (the reference path)
//	sweep -exp all -full        # the paper's own payload sizes (hours)
//	sweep -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"streamline/internal/core"
	"streamline/internal/experiments"
	"streamline/internal/resultstore"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (or 'all')")
		list       = flag.Bool("list", false, "list experiment ids")
		seed       = flag.Uint64("seed", 1, "base seed (per-run seeds derive from it hierarchically)")
		runs       = flag.Int("runs", 0, "repetitions per data point (0 = default 3; paper uses 5)")
		full       = flag.Bool("full", false, "paper-scale payload sizes (up to 1e9 bits; hours)")
		quick      = flag.Bool("quick", false, "smoke-test sizes")
		quiet      = flag.Bool("quiet", false, "suppress progress and timing lines")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
		storeDir   = flag.String("store", "", "result-store directory: serve repeated runs from disk instead of simulating (progress marks them [hit])")
		remote     = flag.String("remote", "", "streamlined daemon URL (e.g. http://localhost:8080): run experiments there instead of locally")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
	)
	flag.BoolVar(quiet, "q", false, "shorthand for -quiet")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: sweep -exp <id|all> (see -list)")
		os.Exit(2)
	}
	if *exp != "all" && !experiments.Known(*exp) {
		fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q (see -list for ids)\n", *exp)
		os.Exit(2)
	}

	// Profiling hooks for hot-path work (see DESIGN.md "Performance").
	// The profiles sample host time, but only decorate the run the way the
	// stderr progress lines do: experiment output on stdout stays a pure
	// function of the seed.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocs
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			}
		}()
	}

	if *remote != "" && *storeDir != "" {
		fmt.Fprintln(os.Stderr, "sweep: -store and -remote are mutually exclusive (the daemon owns its own store)")
		os.Exit(2)
	}

	prog := newProgress(os.Stderr, *quiet)
	opts := experiments.Opts{Seed: *seed, Runs: *runs, Full: *full, Quick: *quick, Workers: *workers}
	opts.Progress = prog.runWriter()

	// With -store, every run is checked against the on-disk result store
	// before a simulator is checked out; warm repeats of a sweep complete
	// in seconds. Progress lines mark served runs [hit] (suppressed, like
	// all progress, by -quiet).
	var store *resultstore.Store
	if *storeDir != "" {
		st, err := resultstore.Open(*storeDir, resultstore.Options{
			Log: func(format string, args ...any) { fmt.Fprintf(os.Stderr, "sweep: store: "+format+"\n", args...) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		store = st
		core.SetStore(st)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	// A remote -exp all goes up as one batch job: the daemon runs every
	// experiment through a single combined runner plan (one pool checkout,
	// one progress hook), and the tables come back in submission order.
	if *remote != "" && len(ids) > 1 {
		done := prog.begin("all (batch)")
		tabs, err := runRemoteBatch(*remote, remoteBatch{
			Exps: ids, Seed: *seed, Runs: *runs, Quick: *quick, Full: *full, Workers: *workers,
		}, prog.runWriter())
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		for _, tab := range tabs {
			if *csv {
				tab.FormatCSV(os.Stdout)
			} else {
				tab.Format(os.Stdout)
			}
		}
		done()
		return
	}
	for _, id := range ids {
		done := prog.begin(id)
		var tab *experiments.Table
		var err error
		if *remote != "" {
			tab, err = runRemote(*remote, remoteJob{
				Exp: id, Seed: *seed, Runs: *runs, Quick: *quick, Full: *full, Workers: *workers,
			}, prog.runWriter())
		} else {
			tab, err = experiments.Run(id, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			tab.FormatCSV(os.Stdout)
		} else {
			tab.Format(os.Stdout)
		}
		done()
	}
	if *exp == "all" {
		prog.total("all experiments")
	}
	if store != nil && !*quiet {
		s := store.Stats()
		fmt.Fprintf(os.Stderr, "[store: %d hits, %d misses, %d entries, %.1f MB]\n",
			s.Hits, s.Misses, s.Entries, float64(s.Bytes)/1e6)
	}
}

// progress is the command's single progress hook: every line written to
// stderr and every wall-clock read funnels through it, so the display
// path has exactly one clock call site (progress.now) and -quiet switches
// the whole thing off at once.
type progress struct {
	w     io.Writer
	quiet bool
	start time.Time
}

func newProgress(w io.Writer, quiet bool) *progress {
	p := &progress{w: w, quiet: quiet}
	p.start = p.now()
	return p
}

// now is the command's only clock access; its values decorate stderr
// progress lines and never reach experiment output (stdout).
func (p *progress) now() time.Time {
	return time.Now() //detlint:allow wallclock -- display-only elapsed timing on the progress path; never reaches results
}

// runWriter returns the per-run progress destination for
// experiments.Opts.Progress, or nil when quiet.
func (p *progress) runWriter() io.Writer {
	if p.quiet {
		return nil
	}
	return p.w
}

// begin marks the start of one experiment and returns the function that
// reports its elapsed time.
func (p *progress) begin(id string) (done func()) {
	start := p.now()
	return func() {
		if !p.quiet {
			fmt.Fprintf(p.w, "[%s took %s]\n", id, p.now().Sub(start).Round(time.Millisecond))
		}
	}
}

// total reports time elapsed since the progress hook was created.
func (p *progress) total(label string) {
	if !p.quiet {
		fmt.Fprintf(p.w, "[%s took %s]\n", label, p.now().Sub(p.start).Round(time.Millisecond))
	}
}
