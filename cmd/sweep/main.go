// Command sweep regenerates the paper's tables and figures (the role of
// the original artifact's run_exp.sh). Each experiment is addressed by the
// paper's artifact id.
//
// Examples:
//
//	sweep -exp table1
//	sweep -exp fig9 -runs 5
//	sweep -exp all
//	sweep -exp all -full        # the paper's own payload sizes (hours)
//	sweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamline/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (or 'all')")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Uint64("seed", 1, "base seed")
		runs  = flag.Int("runs", 0, "repetitions per data point (0 = default 3; paper uses 5)")
		full  = flag.Bool("full", false, "paper-scale payload sizes (up to 1e9 bits; hours)")
		quick = flag.Bool("quick", false, "smoke-test sizes")
		quiet = flag.Bool("q", false, "suppress progress lines")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: sweep -exp <id|all> (see -list)")
		os.Exit(2)
	}

	opts := experiments.Opts{Seed: *seed, Runs: *runs, Full: *full, Quick: *quick}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			tab.FormatCSV(os.Stdout)
		} else {
			tab.Format(os.Stdout)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s took %s]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
