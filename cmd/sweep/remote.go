// The -remote client: instead of simulating locally, each experiment is
// submitted to a streamlined daemon (cmd/streamlined), its progress stream
// is tailed to stderr, and the finished table is fetched and formatted
// exactly as a local run would be. The daemon's shared result store means
// a sweep anyone ran before comes back in seconds.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"streamline/internal/experiments"
)

// remoteJob mirrors the daemon's jobRequest body.
type remoteJob struct {
	Exp     string `json:"exp"`
	Seed    uint64 `json:"seed"`
	Runs    int    `json:"runs"`
	Quick   bool   `json:"quick"`
	Full    bool   `json:"full"`
	Workers int    `json:"workers"`
}

// remoteStatus mirrors the daemon's jobStatus body (the fields the client
// consumes).
type remoteStatus struct {
	ID    string             `json:"id"`
	State string             `json:"state"`
	Table *experiments.Table `json:"table"`
	Error string             `json:"error"`
}

// runRemote executes one experiment on the daemon at base and returns its
// table. Progress (the daemon's runner-hook lines, including [hit]/[miss]
// markers) streams to prog's writer as it happens; the stream's EOF is the
// completion signal, so the client never polls.
func runRemote(base string, job remoteJob, prog io.Writer) (*experiments.Table, error) {
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(job)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", base, err)
	}
	ack, err := decodeRemote(resp, http.StatusAccepted)
	if err != nil {
		return nil, fmt.Errorf("submit %s: %w", job.Exp, err)
	}

	stream, err := http.Get(base + "/jobs/" + ack.ID + "/progress")
	if err != nil {
		return nil, fmt.Errorf("stream %s: %w", ack.ID, err)
	}
	if prog == nil {
		prog = io.Discard
	}
	_, copyErr := io.Copy(prog, stream.Body)
	stream.Body.Close()
	if copyErr != nil {
		return nil, fmt.Errorf("stream %s: %w", ack.ID, copyErr)
	}

	resp, err = http.Get(base + "/jobs/" + ack.ID)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", ack.ID, err)
	}
	st, err := decodeRemote(resp, http.StatusOK)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", ack.ID, err)
	}
	switch {
	case st.State == "failed":
		return nil, fmt.Errorf("%s failed remotely: %s", job.Exp, st.Error)
	case st.Table == nil:
		return nil, fmt.Errorf("%s finished in state %q without a table", job.Exp, st.State)
	}
	return st.Table, nil
}

// decodeRemote checks the response status and decodes the job body.
func decodeRemote(resp *http.Response, want int) (remoteStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteStatus{}, fmt.Errorf("daemon returned %s: %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	var st remoteStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return remoteStatus{}, err
	}
	return st, nil
}
