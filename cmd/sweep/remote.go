// The -remote client: instead of simulating locally, each experiment is
// submitted to a streamlined daemon (cmd/streamlined), its progress stream
// is tailed to stderr, and the finished table is fetched and formatted
// exactly as a local run would be. The daemon's shared result store means
// a sweep anyone ran before comes back in seconds.
//
// Transient failures — connection errors and 5xx responses, including the
// daemon shedding load with 503 — retry with bounded exponential backoff.
// The backoff decision logic is clock-free: each delay is the attempt
// index's power-of-two base scaled by jitter from a PRNG stream seeded
// off the job, so a retry schedule is reproducible from the flags alone
// (the host clock appears only inside the annotated Sleep that paces it).
// Resubmitting after an ambiguous failure is safe: the daemon's
// singleflight table coalesces a duplicate of a still-running job, and
// its result store serves a duplicate of a finished one.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"streamline/internal/experiments"
	"streamline/internal/rng"
)

// remoteJob mirrors the daemon's jobRequest body.
type remoteJob struct {
	Exp     string `json:"exp"`
	Seed    uint64 `json:"seed"`
	Runs    int    `json:"runs"`
	Quick   bool   `json:"quick"`
	Full    bool   `json:"full"`
	Workers int    `json:"workers"`
}

// remoteBatch mirrors the daemon's batchRequest body (POST /jobs/batch):
// every listed experiment runs through one combined runner plan.
type remoteBatch struct {
	Exps    []string `json:"exps"`
	Seed    uint64   `json:"seed"`
	Runs    int      `json:"runs"`
	Quick   bool     `json:"quick"`
	Full    bool     `json:"full"`
	Workers int      `json:"workers"`
}

// remoteStatus mirrors the daemon's jobStatus body (the fields the client
// consumes).
type remoteStatus struct {
	ID     string               `json:"id"`
	State  string               `json:"state"`
	Table  *experiments.Table   `json:"table"`
	Tables []*experiments.Table `json:"tables"`
	Error  string               `json:"error"`
}

const (
	retryAttempts = 5
	retryBase     = 200 * time.Millisecond
	retryCap      = 5 * time.Second
)

// retrier retries transient HTTP failures with bounded exponential
// backoff and seeded jitter. One retrier serves a whole remote run, so
// the jitter stream advances across calls and no two delays repeat.
type retrier struct {
	jitter *rng.Xoshiro
	prog   io.Writer // retry notices, next to the progress lines; may be nil
}

func newRetrier(seed uint64, label string, prog io.Writer) *retrier {
	return &retrier{
		jitter: rng.New(rng.Derive(seed, rng.HashString("remote-retry"), rng.HashString(label))),
		prog:   prog,
	}
}

// do runs fn until it returns a non-5xx response, retrying connection
// errors and 5xx statuses up to retryAttempts times. 4xx responses are
// returned to the caller: they are the daemon rejecting the request, not
// a blip worth retrying.
func (r *retrier) do(what string, fn func() (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			r.backoff(what, attempt, lastErr)
		}
		resp, err := fn()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("daemon returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%s: giving up after %d attempts: %w", what, retryAttempts, lastErr)
}

// backoff sleeps before retry number attempt (1-based). The duration is
// decided without reading the clock: base 200ms doubling per attempt,
// capped at 5s, scaled by a seeded jitter factor in [0.5, 1.5).
func (r *retrier) backoff(what string, attempt int, cause error) {
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	d = time.Duration(float64(d) * (0.5 + r.jitter.Float64()))
	if r.prog != nil {
		fmt.Fprintf(r.prog, "[%s: transient failure (%v); retry %d/%d in %s]\n",
			what, cause, attempt, retryAttempts-1, d.Round(time.Millisecond))
	}
	time.Sleep(d) //detlint:allow wallclock -- retry pacing on the remote-client display path; the delay derives from the attempt index and a seeded jitter stream, never from a clock read
}

// runRemote executes one experiment on the daemon at base and returns its
// table. Progress (the daemon's runner-hook lines, including [hit]/[miss]
// markers) streams to prog's writer as it happens; the stream's EOF is the
// completion signal, so the client never polls.
func runRemote(base string, job remoteJob, prog io.Writer) (*experiments.Table, error) {
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(job)
	if err != nil {
		return nil, err
	}
	rt := newRetrier(job.Seed, "job:"+job.Exp, prog)
	st, err := remoteRun(rt, base, "/jobs", body, prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", job.Exp, err)
	}
	if st.Table == nil {
		return nil, fmt.Errorf("%s finished in state %q without a table", job.Exp, st.State)
	}
	return st.Table, nil
}

// runRemoteBatch executes several experiments as one daemon batch job
// (one combined runner plan server-side) and returns the tables in the
// order submitted.
func runRemoteBatch(base string, batch remoteBatch, prog io.Writer) ([]*experiments.Table, error) {
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, err
	}
	rt := newRetrier(batch.Seed, "batch", prog)
	st, err := remoteRun(rt, base, "/jobs/batch", body, prog)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	if len(st.Tables) != len(batch.Exps) {
		return nil, fmt.Errorf("batch finished in state %q with %d tables, want %d",
			st.State, len(st.Tables), len(batch.Exps))
	}
	return st.Tables, nil
}

// remoteRun is the shared submit → tail → fetch flow: POST body to path,
// stream the job's progress until EOF, then fetch and decode its final
// status. Every HTTP leg retries transient failures through rt.
func remoteRun(rt *retrier, base, path string, body []byte, prog io.Writer) (remoteStatus, error) {
	resp, err := rt.do("submit", func() (*http.Response, error) {
		return http.Post(base+path, "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return remoteStatus{}, err
	}
	ack, err := decodeRemote(resp, http.StatusAccepted)
	if err != nil {
		return remoteStatus{}, fmt.Errorf("submit: %w", err)
	}

	if prog == nil {
		prog = io.Discard
	}
	// A stream that dies mid-copy re-tails from the start: the daemon
	// replays the job's whole line buffer, so EOF still means done. The
	// replayed prefix may repeat on stderr; the table fetch below is what
	// carries results.
	streamResp, err := rt.do("stream "+ack.ID, func() (*http.Response, error) {
		stream, err := http.Get(base + "/jobs/" + ack.ID + "/progress")
		if err != nil {
			return nil, err
		}
		if stream.StatusCode != http.StatusOK {
			return stream, nil // 5xx retries in do(); 4xx surfaces below
		}
		_, copyErr := io.Copy(prog, stream.Body)
		stream.Body.Close()
		if copyErr != nil {
			return nil, copyErr
		}
		return stream, nil
	})
	if err != nil {
		return remoteStatus{}, err
	}
	if streamResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(streamResp.Body, 4096))
		streamResp.Body.Close()
		return remoteStatus{}, fmt.Errorf("stream %s: daemon returned %s: %s",
			ack.ID, streamResp.Status, strings.TrimSpace(string(msg)))
	}

	resp, err = rt.do("fetch "+ack.ID, func() (*http.Response, error) {
		return http.Get(base + "/jobs/" + ack.ID)
	})
	if err != nil {
		return remoteStatus{}, err
	}
	st, err := decodeRemote(resp, http.StatusOK)
	if err != nil {
		return remoteStatus{}, fmt.Errorf("fetch %s: %w", ack.ID, err)
	}
	if st.State == "failed" {
		return remoteStatus{}, fmt.Errorf("failed remotely: %s", st.Error)
	}
	return st, nil
}

// decodeRemote checks the response status and decodes the job body.
func decodeRemote(resp *http.Response, want int) (remoteStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteStatus{}, fmt.Errorf("daemon returned %s: %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	var st remoteStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return remoteStatus{}, err
	}
	return st, nil
}
