package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"streamline/internal/core"
	"streamline/internal/resultstore"
)

// The end-to-end contract of the daemon: a job submitted over HTTP runs to
// completion with streamed progress; resubmitting the identical job is
// answered from the result store — the hit counter moves and no simulator
// is checked out.
func TestDaemonEndToEnd(t *testing.T) {
	st, err := resultstore.Open(t.TempDir(), resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevStore := core.ActiveStore()
	srv := newServer(st, 4, 1)
	defer func() {
		srv.drain()
		core.SetStore(prevStore)
	}()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const body = `{"exp":"ablation-ratelimit","seed":7,"quick":true,"workers":2}`
	submit := func() string {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
		}
		var js jobStatus
		if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		if js.ID == "" || js.State != "queued" {
			t.Fatalf("submit: unexpected ack %+v", js)
		}
		return js.ID
	}
	// tail blocks on the progress stream until the job finishes (EOF) and
	// returns everything streamed.
	tail := func(id string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	status := func(id string) jobStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var js jobStatus
		if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		return js
	}

	id1 := submit()
	progress := tail(id1)
	if !strings.Contains(progress, "ablation-ratelimit") || !strings.Contains(progress, "done") {
		t.Errorf("progress stream missing runner hook lines:\n%s", progress)
	}
	cold := status(id1)
	if cold.State != "done" || cold.Table == nil || cold.Table.ID != "ablation-ratelimit" {
		t.Fatalf("cold job did not finish with a table: %+v", cold)
	}

	simsAfterCold := core.ReadRunCounters().Sims
	hitsAfterCold := st.Stats().Hits
	if simsAfterCold == 0 {
		t.Fatal("cold job checked out no simulator — the test is not exercising the serve path")
	}

	id2 := submit()
	if id2 == id1 {
		t.Fatalf("job ids must be unique, got %s twice", id1)
	}
	if warmProgress := tail(id2); !strings.Contains(warmProgress, "[hit]") {
		t.Errorf("warm progress lines should mark served runs with [hit]:\n%s", warmProgress)
	}
	warm := status(id2)
	if warm.State != "done" {
		t.Fatalf("warm job state %q, error %q", warm.State, warm.Error)
	}
	if !reflect.DeepEqual(warm.Table, cold.Table) {
		t.Errorf("warm table differs from cold table\nwarm %+v\ncold %+v", warm.Table, cold.Table)
	}
	if got := core.ReadRunCounters().Sims; got != simsAfterCold {
		t.Errorf("warm job checked out %d simulators; identical resubmits must be served from the store", got-simsAfterCold)
	}
	if got := st.Stats().Hits; got <= hitsAfterCold {
		t.Errorf("store hits did not move on resubmit: %d -> %d", hitsAfterCold, got)
	}

	// The stats endpoint reflects the same counters.
	resp, err := http.Get(ts.URL + "/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats storeStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Store != st.Stats() {
		t.Errorf("/store/stats store counters %+v != %+v", stats.Store, st.Stats())
	}
	if stats.Run.Sims != simsAfterCold {
		t.Errorf("/store/stats run counters %+v; want Sims %d", stats.Run, simsAfterCold)
	}
	if stats.Dir != st.Dir() {
		t.Errorf("/store/stats dir %q != %q", stats.Dir, st.Dir())
	}
}

func TestDaemonRejectsBadRequests(t *testing.T) {
	srv := newServer(nil, 1, 1)
	defer srv.drain()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"exp":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

func TestDaemonDrainRefusesSubmits(t *testing.T) {
	srv := newServer(nil, 1, 1)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	srv.drain()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"exp":"table1","quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: status %d, want 503", resp.StatusCode)
	}
}
