// The daemon's HTTP surface and job machinery, separated from main so the
// end-to-end test can drive a server instance without a process or a
// network listener it does not control.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"streamline/internal/core"
	"streamline/internal/experiments"
	"streamline/internal/resultstore"
)

// jobRequest is the POST /jobs body. Zero values mean the sweep defaults:
// seed 1, three repetitions, standard payload scale, GOMAXPROCS workers.
type jobRequest struct {
	// Exp is a single experiment id (see sweep -list); clients expand
	// "all" into one job per id so the queue stays per-experiment FIFO.
	Exp     string `json:"exp"`
	Seed    uint64 `json:"seed"`
	Runs    int    `json:"runs"`
	Quick   bool   `json:"quick"`
	Full    bool   `json:"full"`
	Workers int    `json:"workers"`
}

// jobStatus is the GET /jobs/{id} body.
type jobStatus struct {
	ID       string             `json:"id"`
	Req      jobRequest         `json:"req"`
	State    string             `json:"state"` // queued | running | done | failed
	Progress []string           `json:"progress,omitempty"`
	Table    *experiments.Table `json:"table,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// storeStats is the GET /store/stats body: the on-disk store's counters
// plus the process-wide run counters, which together show how much of the
// daemon's work was served versus simulated.
type storeStats struct {
	Dir   string            `json:"dir,omitempty"`
	Store resultstore.Stats `json:"store"`
	Run   core.RunCounters  `json:"run"`
}

// job is one queued experiment run. Its Write method is the progress sink
// handed to experiments.Opts.Progress, so the runner's per-run hook lines
// stream straight into the job's line buffer; streamProgress replays and
// follows that buffer over HTTP.
type job struct {
	id  string
	req jobRequest

	mu      sync.Mutex
	cond    *sync.Cond
	state   string
	lines   []string
	partial []byte
	table   *experiments.Table
	errMsg  string
}

func newJob(id string, req jobRequest) *job {
	j := &job{id: id, req: req, state: "queued"}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Write appends newline-delimited progress output; partial lines are held
// back until their newline arrives so stream consumers only ever see whole
// lines. Called from the runner's hook goroutine (hooks are serialized).
func (j *job) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.partial = append(j.partial, p...)
	for {
		i := bytes.IndexByte(j.partial, '\n')
		if i < 0 {
			break
		}
		j.lines = append(j.lines, string(j.partial[:i+1]))
		j.partial = j.partial[i+1:]
	}
	j.cond.Broadcast()
	return len(p), nil
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.cond.Broadcast()
	j.mu.Unlock()
}

func (j *job) finish(tab *experiments.Table, err error) {
	j.mu.Lock()
	if len(j.partial) > 0 {
		j.lines = append(j.lines, string(j.partial)+"\n")
		j.partial = nil
	}
	if err != nil {
		j.state = "failed"
		j.errMsg = err.Error()
	} else {
		j.state = "done"
		j.table = tab
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:       j.id,
		Req:      j.req,
		State:    j.state,
		Progress: append([]string(nil), j.lines...),
		Table:    j.table,
		Error:    j.errMsg,
	}
}

// server owns the job queue and registry. Jobs run FIFO on a fixed pool of
// worker goroutines; the queue is bounded, and a full queue rejects the
// submit with 503 rather than buffering without limit.
type server struct {
	store *resultstore.Store
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool
}

// newServer starts workers goroutines draining a queueCap-bounded FIFO.
// store may be nil (jobs then always simulate). Call drain to stop.
func newServer(store *resultstore.Store, queueCap, workers int) *server {
	if queueCap < 1 {
		queueCap = 64
	}
	if workers < 1 {
		workers = 1
	}
	s := &server{
		store: store,
		queue: make(chan *job, queueCap),
		jobs:  make(map[string]*job),
	}
	core.SetStore(store)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

func (s *server) runJob(j *job) {
	j.setState("running")
	opts := experiments.Opts{
		Seed:     j.req.Seed,
		Runs:     j.req.Runs,
		Quick:    j.req.Quick,
		Full:     j.req.Full,
		Workers:  j.req.Workers,
		Progress: j,
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	tab, err := experiments.Run(j.req.Exp, opts)
	j.finish(tab, err)
}

// drain stops accepting new jobs, lets queued and running jobs finish,
// and returns. Submits during or after the drain get 503.
func (s *server) drain() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	close(s.queue)
	s.wg.Wait()
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /store/stats", s.handleStoreStats)
	return mux
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !experiments.Known(req.Exp) {
		http.Error(w, fmt.Sprintf("unknown experiment %q", req.Exp), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), req)
	select {
	case s.queue <- j:
	default:
		s.nextID--
		s.mu.Unlock()
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(jobStatus{ID: j.id, Req: req, State: "queued"})
}

func (s *server) job(r *http.Request) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

// handleProgress streams the job's progress lines as plain text, flushing
// each line as it lands, and closes when the job finishes — a client can
// tail a run and treat EOF as "result is ready".
func (s *server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		j.mu.Lock()
		for sent == len(j.lines) && j.state != "done" && j.state != "failed" {
			j.cond.Wait()
		}
		pending := j.lines[sent:]
		sent = len(j.lines)
		finished := j.state == "done" || j.state == "failed"
		j.mu.Unlock()
		for _, line := range pending {
			if _, err := fmt.Fprint(w, line); err != nil {
				return
			}
		}
		if flusher != nil && len(pending) > 0 {
			flusher.Flush()
		}
		if finished {
			return
		}
		if r.Context().Err() != nil {
			return
		}
	}
}

func (s *server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	var st storeStats
	if s.store != nil {
		st.Dir = s.store.Dir()
		st.Store = s.store.Stats()
	}
	st.Run = core.ReadRunCounters()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
