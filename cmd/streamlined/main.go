// Command streamlined serves experiment runs over HTTP, backed by the
// on-disk result store: a job whose every point was computed before — by
// an earlier job, an earlier daemon, or a local sweep sharing the store
// directory — is answered from disk without checking out a simulator.
//
// Quickstart:
//
//	streamlined -listen :8080 -store ~/.streamline/store
//	curl -X POST localhost:8080/jobs -d '{"exp":"table1","seed":1,"quick":true}'
//	curl localhost:8080/jobs/job-1/progress   # tails the run; EOF = done
//	curl localhost:8080/jobs/job-1            # result table as JSON
//	curl localhost:8080/store/stats
//
// Or from the sweep client: sweep -exp table1 -remote http://localhost:8080.
//
// Jobs queue FIFO into a bounded queue (-queue, 503 when full) and run on
// -jobs concurrent workers. SIGINT/SIGTERM drains: in-flight and queued
// jobs finish, new submits are refused, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"streamline/internal/daemon"
	"streamline/internal/resultstore"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "address to serve HTTP on")
		storeDir = flag.String("store", "", "result-store directory (required)")
		maxBytes = flag.Int64("store-max-bytes", 0, "store size budget in bytes (0 = 2 GiB default, negative = unbounded)")
		memBytes = flag.Int64("store-mem-bytes", 0, "in-memory tier budget in bytes (0 = 256 MiB default, negative = disabled)")
		queueCap = flag.Int("queue", 64, "job queue capacity; submits beyond it get 503")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently (each job still fans its runs across its own worker pool)")
	)
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: streamlined -listen :8080 -store DIR")
		os.Exit(2)
	}
	st, err := resultstore.Open(*storeDir, resultstore.Options{
		MaxBytes: *maxBytes,
		MemBytes: *memBytes,
		Log:      func(format string, args ...any) { fmt.Fprintf(os.Stderr, "streamlined: store: "+format+"\n", args...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamlined: %v\n", err)
		os.Exit(1)
	}

	srv := daemon.NewServer(st, *queueCap, *jobs)
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "streamlined: draining (queued jobs finish; new submits get 503)")
		// Stop accepting connections first, then let the queue run dry.
		// Shutdown without a deadline: progress streams close when their
		// jobs finish, which the drain below guarantees.
		httpSrv.Shutdown(context.Background())
	}()

	fmt.Fprintf(os.Stderr, "streamlined: serving on %s (store %s)\n", *listen, st.Dir())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "streamlined: %v\n", err)
		os.Exit(1)
	}
	srv.Drain()
	s := st.Stats()
	fmt.Fprintf(os.Stderr, "streamlined: drained; store: %d entries, %d hits, %d misses\n",
		s.Entries, s.Hits, s.Misses)
}
