package streamline

import (
	"bytes"
	"testing"
)

// FuzzReassemble drives SendReliable's pure framing/reassembly core with
// arbitrary payloads, corruption patterns, and block sizes, pinning the
// selective-repeat invariants: a frame of all pending blocks reproduces the
// payload; a block survives reassembly exactly when its checksum matches;
// verified chunks land at their home offsets; a clean retransmission of the
// failed blocks completes the payload; and a truncated frame leaves the
// unreachable tail pending instead of reading out of bounds.
func FuzzReassemble(f *testing.F) {
	f.Add([]byte("hello, covert world - a payload spanning blocks"), []byte{0, 0, 4}, 8)
	f.Add([]byte("exact"), []byte{}, 5)
	f.Add(bytes.Repeat([]byte{0xaa}, 300), []byte{1}, 64)
	f.Add([]byte{1, 2, 3}, []byte{0xff, 0, 0, 0, 0, 0, 0, 0, 0}, 1)
	f.Fuzz(func(t *testing.T, data, corrupt []byte, blockBytes int) {
		if len(data) == 0 || blockBytes <= 0 || blockBytes > 1<<16 {
			t.Skip()
		}
		nBlocks := (len(data) + blockBytes - 1) / blockBytes
		pending := make([]int, nBlocks)
		for i := range pending {
			pending[i] = i
		}

		// With every block pending, the frame IS the payload.
		frame := roundFrame(data, pending, blockBytes)
		if !bytes.Equal(frame, data) {
			t.Fatal("full-pending frame differs from the payload")
		}

		// Corrupt the frame cyclically and reassemble.
		got := append([]byte(nil), frame...)
		if len(corrupt) > 0 {
			for i := range got {
				got[i] ^= corrupt[i%len(corrupt)]
			}
		}
		dst := make([]byte, len(data))
		still := reassemble(dst, data, got, pending, blockBytes)

		inStill := make(map[int]bool, len(still))
		prev := -1
		for _, id := range still {
			if id <= prev || id < 0 || id >= nBlocks {
				t.Fatalf("still-pending list %v not an ordered subset of blocks", still)
			}
			prev = id
			inStill[id] = true
		}
		for id := 0; id < nBlocks; id++ {
			want := blockAt(data, id, blockBytes)
			chunk := blockAt(got, id, blockBytes) // home offsets: all blocks were pending
			matched := blockSum(chunk) == blockSum(want)
			if matched == inStill[id] {
				t.Fatalf("block %d: checksum match=%v but pending=%v", id, matched, inStill[id])
			}
			if matched && !bytes.Equal(blockAt(dst, id, blockBytes), chunk) {
				t.Fatalf("block %d verified but not copied to its home offset", id)
			}
		}

		// A clean retransmission of the failed blocks completes the payload.
		if len(still) > 0 {
			retry := roundFrame(data, still, blockBytes)
			if rest := reassemble(dst, data, retry, still, blockBytes); len(rest) != 0 {
				t.Fatalf("clean retransmission left %v pending", rest)
			}
		}
		if !bytes.Equal(dst, data) {
			t.Fatal("payload not fully reassembled after clean retransmission")
		}

		// A frame truncated mid-layout must not panic, and every block whose
		// chunk falls past the truncation stays pending.
		short := reassemble(make([]byte, len(data)), data, got[:len(got)/2], pending, blockBytes)
		for id := (len(got)/2)/blockBytes + 1; id < nBlocks; id++ {
			found := false
			for _, s := range short {
				if s == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("block %d beyond the truncated frame not pending", id)
			}
		}
	})
}
