// Package streamline is a simulation-based reproduction of "Streamline: A
// Fast, Flushless Cache Covert-Channel Attack by Enabling Asynchronous
// Collusion" (Saileshwar, Fletcher, Qureshi — ASPLOS 2021).
//
// The package provides:
//
//   - the Streamline covert channel itself (Run / Send), an asynchronous,
//     flushless cache channel reaching ~1801 KB/s at ~0.37% bit-error-rate
//     on the simulated Skylake platform, matching the paper's evaluation;
//   - the baseline attacks it is compared against (Flush+Reload,
//     Flush+Flush, Prime+Probe, Thrash+Reload, Take-A-Way) via Baseline;
//   - the simulated machine models (Skylake, KabyLake, CoffeeLake).
//
// Everything runs on a deterministic cycle-level simulator of a multi-core
// cache hierarchy (set-associative L1/L2/LLC with RRIP-family replacement,
// Intel-like prefetchers, and a DRAM latency model); see DESIGN.md for the
// substitution argument and internal/ for the substrate packages. Results
// are reproducible bit-for-bit from Config.Seed.
//
// # Quick start
//
//	cfg := streamline.DefaultConfig()
//	xfer, err := streamline.Send(cfg, []byte("attack at dawn"))
//	if err != nil { ... }
//	fmt.Printf("%s (%.0f KB/s, %.2f%% bit errors)\n",
//		xfer.Received, xfer.Result.BitRateKBps, xfer.Result.Errors.Rate()*100)
package streamline

import (
	"fmt"

	"streamline/internal/attacks"
	"streamline/internal/core"
	"streamline/internal/experiments"
	"streamline/internal/params"
	"streamline/internal/payload"
)

// Config selects the channel configuration; see core.Config for every
// knob. DefaultConfig returns the paper's evaluation setup.
type Config = core.Config

// Result reports a channel run: bit-rate, error breakdown, gap statistics.
type Result = core.Result

// Machine describes a simulated platform.
type Machine = params.Machine

// AttackResult reports a baseline attack run.
type AttackResult = attacks.Result

// Attack is a baseline covert channel; see Baseline.
type Attack = attacks.Attack

// DefaultConfig returns the paper's default setup: 64 MB shared array,
// PRNG channel encoding, trailing accesses at lag 5000, rate-limited
// sender, coarse synchronization every 200000 bits, on the Skylake
// machine.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run transmits a 0/1 bit vector over the channel and returns the
// measured Result (bit-rate, error breakdown, gap trace).
func Run(cfg Config, payloadBits []byte) (*Result, error) {
	return core.Run(cfg, payloadBits)
}

// Transfer is the outcome of a byte-level Send.
type Transfer struct {
	// Received is the payload as decoded by the receiver (same length as
	// the input; residual channel errors may flip bits unless ECC fully
	// corrected them).
	Received []byte
	// Result is the underlying channel measurement.
	Result *Result
}

// Send transmits data (bytes) over the channel and returns what the
// receiver decoded. Enable cfg.ECC for (72,64) Hamming protection of the
// payload. Unless the caller configured one, Send prepends an 8192-bit
// preamble so the warm-cache startup transient does not corrupt small
// payloads.
func Send(cfg Config, data []byte) (*Transfer, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("streamline: empty payload")
	}
	if cfg.PreambleBits == 0 {
		cfg.PreambleBits = 8192
	}
	bits := payload.FromBytes(data)
	res, err := core.Run(cfg, bits)
	if err != nil {
		return nil, err
	}
	return &Transfer{Received: payload.ToBytes(res.Decoded), Result: res}, nil
}

// Skylake returns the paper's evaluation platform (Intel Xeon E3-1270 v5).
func Skylake() *Machine { return params.SkylakeE3() }

// KabyLake returns the Core i7-8700K platform the paper also validated on.
func KabyLake() *Machine { return params.KabyLakeI7() }

// CoffeeLake returns the Core i5-9400 platform.
func CoffeeLake() *Machine { return params.CoffeeLakeI5() }

// ARM returns an ARMv8 Cortex-A72-class platform with no unprivileged
// flush instruction: flush-based attacks are impossible there, Streamline
// is not (Section 2.3.2). Pair it with ARMConfig.
func ARM() *Machine { return params.ARMCortexA72() }

// ARMConfig returns Streamline tuned for the ARM platform (smaller shared
// array, lag, and sync period to match its 2 MB last-level cache).
func ARMConfig() Config { return experiments.ARMStreamlineConfig() }

// SMTConfig returns the hyper-threaded same-core variant of Section 6:
// sender and receiver as SMT siblings targeting the shared L2.
func SMTConfig() Config { return experiments.SMTStreamlineConfig() }

// BaselineNames lists the prior-work attacks available from Baseline, in
// Table 6 order.
func BaselineNames() []string {
	return []string{
		"take-a-way", "flush+flush", "prime+probe(l1)",
		"flush+reload", "prime+probe(llc)", "thrash+reload",
	}
}

// AsyncPrimeProbe constructs the asynchronous Prime+Probe channel — the
// future-work direction the paper sketches in Section 5.2, realized here:
// Streamline's asynchronous self-resetting protocol over set conflicts,
// removing the shared-memory requirement at ~6x the rate of the
// synchronous LLC Prime+Probe.
func AsyncPrimeProbe(seed uint64) (Attack, error) {
	return attacks.NewAsyncPrimeProbe(seed)
}

// Baseline constructs one of the paper's comparison attacks by name (see
// BaselineNames) with its default, paper-matching bit period.
func Baseline(name string, seed uint64) (Attack, error) {
	switch name {
	case "flush+reload":
		return attacks.NewFlushReload(0, seed)
	case "flush+flush":
		return attacks.NewFlushFlush(0, seed)
	case "prime+probe(llc)":
		return attacks.NewPrimeProbeLLC(0, seed)
	case "prime+probe(l1)":
		return attacks.NewPrimeProbeL1(0, seed)
	case "take-a-way":
		return attacks.NewTakeAway(0, 0, seed)
	case "thrash+reload":
		return attacks.NewThrashReload(seed)
	default:
		return nil, fmt.Errorf("streamline: unknown baseline %q", name)
	}
}

// BitsFromBytes unpacks bytes into the 0/1 bit vector Run consumes
// (LSB-first).
func BitsFromBytes(data []byte) []byte { return payload.FromBytes(data) }

// BytesFromBits packs a 0/1 bit vector back into bytes (LSB-first).
func BytesFromBits(bits []byte) []byte { return payload.ToBytes(bits) }

// RandomBits returns n deterministic pseudo-random payload bits.
func RandomBits(seed uint64, n int) []byte { return payload.Random(seed, n) }
