package streamline

import (
	"bytes"
	"testing"
)

func TestSendRoundTripWithECC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECC = true
	msg := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	xfer, err := Send(cfg, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(xfer.Received) != len(msg) {
		t.Fatalf("received %d bytes, sent %d", len(xfer.Received), len(msg))
	}
	// The first ~5000 bits (~700 bytes) carry the warm-cache startup
	// transient (Figure 9's elevated small-payload error); it is bursty,
	// so SECDED cannot fully correct it. Steady state must be near-clean.
	diff := 0
	const steady = 1000
	for i := steady; i < len(msg); i++ {
		if msg[i] != xfer.Received[i] {
			diff++
		}
	}
	if diff > (len(msg)-steady)/100 {
		t.Fatalf("%d/%d steady-state bytes corrupted", diff, len(msg)-steady)
	}
	if xfer.Result.BitRateKBps < 1400 {
		t.Fatalf("effective rate %.0f KB/s too low", xfer.Result.BitRateKBps)
	}
}

func TestSendRejectsEmpty(t *testing.T) {
	if _, err := Send(DefaultConfig(), nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestRunMatchesHeadlineNumbers(t *testing.T) {
	res, err := Run(DefaultConfig(), RandomBits(1, 500000))
	if err != nil {
		t.Fatal(err)
	}
	if res.BitRateKBps < 1700 || res.BitRateKBps > 1900 {
		t.Fatalf("bit-rate %.0f KB/s not near the paper's 1801", res.BitRateKBps)
	}
	if res.Errors.Rate() > 0.02 {
		t.Fatalf("error rate %.4f too high", res.Errors.Rate())
	}
}

func TestBitsHelpersRoundTrip(t *testing.T) {
	data := []byte{0xde, 0xad, 0xbe, 0xef}
	if !bytes.Equal(BytesFromBits(BitsFromBytes(data)), data) {
		t.Fatal("bit helpers do not round-trip")
	}
}

func TestMachines(t *testing.T) {
	for _, m := range []*Machine{Skylake(), KabyLake(), CoffeeLake()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestBaselinesConstructAndRun(t *testing.T) {
	for _, name := range BaselineNames() {
		a, err := Baseline(name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("baseline %q reports name %q", name, a.Name())
		}
		n := 2000
		if name == "thrash+reload" {
			n = 20 // each bit thrashes the whole LLC
		}
		res, err := a.Run(RandomBits(2, n))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Bits != n {
			t.Errorf("%s: bits = %d", name, res.Bits)
		}
	}
}

func TestBaselineUnknown(t *testing.T) {
	if _, err := Baseline("rowhammer", 1); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestStreamlineBeatsAllBaselines(t *testing.T) {
	res, err := Run(DefaultConfig(), RandomBits(1, 300000))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"take-a-way", "flush+flush", "flush+reload"} {
		a, err := Baseline(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		bres, err := a.Run(RandomBits(2, 30000))
		if err != nil {
			t.Fatal(err)
		}
		if res.BitRateKBps < 2.5*bres.BitRateKBps {
			t.Errorf("streamline (%.0f KB/s) not >=2.5x %s (%.0f KB/s)",
				res.BitRateKBps, name, bres.BitRateKBps)
		}
	}
}

func TestARMChannel(t *testing.T) {
	cfg := ARMConfig()
	res, err := Run(cfg, RandomBits(1, 150000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors.Rate() > 0.03 {
		t.Fatalf("ARM channel error %.3f", res.Errors.Rate())
	}
	if res.BitRateKBps < 500 {
		t.Fatalf("ARM channel rate %.0f KB/s", res.BitRateKBps)
	}
}

func TestARMRefusesFlushAttacks(t *testing.T) {
	if !ARM().NoUnprivilegedFlush {
		t.Fatal("ARM machine claims unprivileged flushes")
	}
}

func TestSMTChannel(t *testing.T) {
	cfg := SMTConfig()
	res, err := Run(cfg, RandomBits(1, 150000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors.Rate() > 0.02 {
		t.Fatalf("SMT channel error %.3f", res.Errors.Rate())
	}
	// No DRAM in the SMT loop: it outruns the cross-core channel.
	if res.BitRateKBps < 2500 {
		t.Fatalf("SMT channel rate %.0f KB/s", res.BitRateKBps)
	}
}

func TestPartitioningKillsChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartitionWays = 8
	res, err := Run(cfg, RandomBits(1, 100000))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-domain hits are impossible: the receiver sees ~all misses and
	// the decoded stream is uncorrelated with the payload (~50% errors).
	if r := res.Errors.Rate(); r < 0.4 {
		t.Fatalf("partitioned channel error %.3f; expected death", r)
	}
}

func TestAsyncPrimeProbeFacade(t *testing.T) {
	a, err := AsyncPrimeProbe(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(RandomBits(1, 30000))
	if err != nil {
		t.Fatal(err)
	}
	if res.BitRateKBps < 300 || res.Errors.Rate() > 0.01 {
		t.Fatalf("async P+P: %.0f KB/s @ %.3f%%", res.BitRateKBps, res.Errors.Rate()*100)
	}
}
